//! Transactional red-black tree — STAMP's `lib/rbtree.c` proper.
//!
//! [`crate::TMap`] (a treap) is the default ordered map in the workload
//! ports because its deterministic shape makes cross-system memory
//! digests comparable; this module provides the real thing for fidelity
//! studies and as a drop-in alternative. Same interface, same
//! transactional conventions: every operation takes a [`TxCtx`] and
//! aborts propagate via `?`.
//!
//! Node layout: `[key, value, color, parent, left, right]` (6 words);
//! color 0 = red, 1 = black. The null pointer (0) acts as the black nil
//! sentinel.

use crate::alloc::TmAlloc;
use lockiller::flatmem::SetupCtx;
use lockiller::guest::{Abort, TxCtx};
use sim_core::types::Addr;

const KEY: u64 = 0;
const VAL: u64 = 1;
const COLOR: u64 = 2;
const PARENT: u64 = 3;
const LEFT: u64 = 4;
const RIGHT: u64 = 5;
const NODE_WORDS: u64 = 6;

const RED: u64 = 0;
const BLACK: u64 = 1;

/// Handle to a transactional red-black tree (unique keys).
#[derive(Clone, Copy, Debug)]
pub struct RbTree {
    /// Root pointer cell.
    root: Addr,
}

impl RbTree {
    pub fn setup(s: &mut SetupCtx) -> RbTree {
        let root = s.alloc(8);
        s.write(root, 0);
        RbTree { root }
    }

    // -------------- small transactional helpers --------------

    fn color(&self, tx: &mut TxCtx, n: u64) -> Result<u64, Abort> {
        if n == 0 {
            Ok(BLACK) // nil is black
        } else {
            tx.load(Addr(n).add(COLOR))
        }
    }

    fn set_color(&self, tx: &mut TxCtx, n: u64, c: u64) -> Result<(), Abort> {
        debug_assert_ne!(n, 0);
        tx.store(Addr(n).add(COLOR), c)
    }

    fn parent(&self, tx: &mut TxCtx, n: u64) -> Result<u64, Abort> {
        tx.load(Addr(n).add(PARENT))
    }

    fn child(&self, tx: &mut TxCtx, n: u64, dir: u64) -> Result<u64, Abort> {
        tx.load(Addr(n).add(dir))
    }

    /// Replace `old`'s position under its parent (or the root) with `new`.
    fn replace_child(&self, tx: &mut TxCtx, parent: u64, old: u64, new: u64) -> Result<(), Abort> {
        if parent == 0 {
            tx.store(self.root, new)?;
        } else if tx.load(Addr(parent).add(LEFT))? == old {
            tx.store(Addr(parent).add(LEFT), new)?;
        } else {
            tx.store(Addr(parent).add(RIGHT), new)?;
        }
        if new != 0 {
            tx.store(Addr(new).add(PARENT), parent)?;
        }
        Ok(())
    }

    /// Rotate `n` down in direction `dir` (LEFT = left-rotate brings the
    /// right child up).
    fn rotate(&self, tx: &mut TxCtx, n: u64, dir: u64) -> Result<(), Abort> {
        let other = if dir == LEFT { RIGHT } else { LEFT };
        let up = self.child(tx, n, other)?;
        debug_assert_ne!(up, 0, "rotation requires a child to promote");
        let moved = self.child(tx, up, dir)?;
        tx.store(Addr(n).add(other), moved)?;
        if moved != 0 {
            tx.store(Addr(moved).add(PARENT), n)?;
        }
        let p = self.parent(tx, n)?;
        self.replace_child(tx, p, n, up)?;
        tx.store(Addr(up).add(dir), n)?;
        tx.store(Addr(n).add(PARENT), up)?;
        Ok(())
    }

    // -------------- queries --------------

    pub fn find(&self, tx: &mut TxCtx, key: u64) -> Result<Option<u64>, Abort> {
        let mut cur = tx.load(self.root)?;
        while cur != 0 {
            let k = tx.load(Addr(cur).add(KEY))?;
            if k == key {
                return Ok(Some(tx.load(Addr(cur).add(VAL))?));
            }
            cur = self.child(tx, cur, if key < k { LEFT } else { RIGHT })?;
        }
        Ok(None)
    }

    pub fn contains(&self, tx: &mut TxCtx, key: u64) -> Result<bool, Abort> {
        Ok(self.find(tx, key)?.is_some())
    }

    pub fn update(&self, tx: &mut TxCtx, key: u64, value: u64) -> Result<bool, Abort> {
        let mut cur = tx.load(self.root)?;
        while cur != 0 {
            let k = tx.load(Addr(cur).add(KEY))?;
            if k == key {
                tx.store(Addr(cur).add(VAL), value)?;
                return Ok(true);
            }
            cur = self.child(tx, cur, if key < k { LEFT } else { RIGHT })?;
        }
        Ok(false)
    }

    // -------------- insert --------------

    /// Insert; false if the key already exists.
    pub fn insert(
        &self,
        tx: &mut TxCtx,
        alloc: &TmAlloc,
        key: u64,
        value: u64,
    ) -> Result<bool, Abort> {
        // Standard BST descent.
        let mut parent = 0u64;
        let mut dir = LEFT;
        let mut cur = tx.load(self.root)?;
        while cur != 0 {
            let k = tx.load(Addr(cur).add(KEY))?;
            if k == key {
                return Ok(false);
            }
            parent = cur;
            dir = if key < k { LEFT } else { RIGHT };
            cur = self.child(tx, cur, dir)?;
        }
        let n = alloc.alloc(tx, NODE_WORDS)?;
        tx.store(n.add(KEY), key)?;
        tx.store(n.add(VAL), value)?;
        tx.store(n.add(COLOR), RED)?;
        tx.store(n.add(PARENT), parent)?;
        tx.store(n.add(LEFT), 0)?;
        tx.store(n.add(RIGHT), 0)?;
        if parent == 0 {
            tx.store(self.root, n.0)?;
        } else {
            tx.store(Addr(parent).add(dir), n.0)?;
        }
        self.insert_fixup(tx, n.0)?;
        Ok(true)
    }

    fn insert_fixup(&self, tx: &mut TxCtx, mut n: u64) -> Result<(), Abort> {
        loop {
            let p = self.parent(tx, n)?;
            if p == 0 || self.color(tx, p)? == BLACK {
                break;
            }
            let g = self.parent(tx, p)?;
            debug_assert_ne!(g, 0, "red parent must have a grandparent");
            let p_is_left = self.child(tx, g, LEFT)? == p;
            let uncle = self.child(tx, g, if p_is_left { RIGHT } else { LEFT })?;
            if self.color(tx, uncle)? == RED {
                // Case 1: recolor and ascend.
                self.set_color(tx, p, BLACK)?;
                self.set_color(tx, uncle, BLACK)?;
                self.set_color(tx, g, RED)?;
                n = g;
            } else {
                // Cases 2/3: rotate.
                let n_is_left = self.child(tx, p, LEFT)? == n;
                if p_is_left != n_is_left {
                    // Case 2: inner child — rotate parent outward first.
                    self.rotate(tx, p, if p_is_left { LEFT } else { RIGHT })?;
                    n = p;
                }
                let p2 = self.parent(tx, n)?;
                let g2 = self.parent(tx, p2)?;
                self.set_color(tx, p2, BLACK)?;
                self.set_color(tx, g2, RED)?;
                self.rotate(tx, g2, if p_is_left { RIGHT } else { LEFT })?;
                break;
            }
        }
        let root = tx.load(self.root)?;
        if root != 0 {
            self.set_color(tx, root, BLACK)?;
        }
        Ok(())
    }

    // -------------- delete --------------

    /// Remove `key`; returns its value if present.
    pub fn remove(&self, tx: &mut TxCtx, key: u64) -> Result<Option<u64>, Abort> {
        // Find the node.
        let mut z = tx.load(self.root)?;
        while z != 0 {
            let k = tx.load(Addr(z).add(KEY))?;
            if k == key {
                break;
            }
            z = self.child(tx, z, if key < k { LEFT } else { RIGHT })?;
        }
        if z == 0 {
            return Ok(None);
        }
        let value = tx.load(Addr(z).add(VAL))?;

        // If z has two children, swap in its in-order successor's
        // key/value and delete the successor node instead.
        let zl = self.child(tx, z, LEFT)?;
        let zr = self.child(tx, z, RIGHT)?;
        let target = if zl != 0 && zr != 0 {
            let mut s = zr;
            loop {
                let l = self.child(tx, s, LEFT)?;
                if l == 0 {
                    break;
                }
                s = l;
            }
            let sk = tx.load(Addr(s).add(KEY))?;
            let sv = tx.load(Addr(s).add(VAL))?;
            tx.store(Addr(z).add(KEY), sk)?;
            tx.store(Addr(z).add(VAL), sv)?;
            s
        } else {
            z
        };

        // `target` has at most one child.
        let tl = self.child(tx, target, LEFT)?;
        let tr = self.child(tx, target, RIGHT)?;
        let child = if tl != 0 { tl } else { tr };
        let t_color = self.color(tx, target)?;
        let t_parent = self.parent(tx, target)?;
        self.replace_child(tx, t_parent, target, child)?;

        if t_color == BLACK {
            if self.color(tx, child)? == RED {
                self.set_color(tx, child, BLACK)?;
            } else {
                // Double-black fixup: `child` may be nil, so track its
                // parent explicitly.
                self.delete_fixup(tx, child, t_parent)?;
            }
        }
        Ok(Some(value))
    }

    fn delete_fixup(&self, tx: &mut TxCtx, mut n: u64, mut parent: u64) -> Result<(), Abort> {
        while parent != 0 && self.color(tx, n)? == BLACK {
            let n_is_left = self.child(tx, parent, LEFT)? == n;
            let (sib_dir, n_dir) = if n_is_left {
                (RIGHT, LEFT)
            } else {
                (LEFT, RIGHT)
            };
            let mut sib = self.child(tx, parent, sib_dir)?;
            debug_assert_ne!(sib, 0, "double-black node must have a sibling");
            if self.color(tx, sib)? == RED {
                // Case 1: red sibling — rotate to get a black one.
                self.set_color(tx, sib, BLACK)?;
                self.set_color(tx, parent, RED)?;
                self.rotate(tx, parent, n_dir)?;
                sib = self.child(tx, parent, sib_dir)?;
            }
            let sl = self.child(tx, sib, LEFT)?;
            let sr = self.child(tx, sib, RIGHT)?;
            if self.color(tx, sl)? == BLACK && self.color(tx, sr)? == BLACK {
                // Case 2: recolor sibling, ascend.
                self.set_color(tx, sib, RED)?;
                n = parent;
                parent = self.parent(tx, n)?;
            } else {
                let (inner, outer) = if n_is_left { (sl, sr) } else { (sr, sl) };
                if self.color(tx, outer)? == BLACK {
                    // Case 3: inner red — rotate sibling.
                    if inner != 0 {
                        self.set_color(tx, inner, BLACK)?;
                    }
                    self.set_color(tx, sib, RED)?;
                    self.rotate(tx, sib, sib_dir)?;
                    sib = self.child(tx, parent, sib_dir)?;
                }
                // Case 4: outer red — final rotation.
                let pc = self.color(tx, parent)?;
                self.set_color(tx, sib, pc)?;
                self.set_color(tx, parent, BLACK)?;
                let outer2 = self.child(tx, sib, sib_dir)?;
                if outer2 != 0 {
                    self.set_color(tx, outer2, BLACK)?;
                }
                self.rotate(tx, parent, n_dir)?;
                n = tx.load(self.root)?;
                parent = 0;
            }
        }
        if n != 0 {
            self.set_color(tx, n, BLACK)?;
        }
        Ok(())
    }

    pub fn len(&self, tx: &mut TxCtx) -> Result<u64, Abort> {
        let mut n = 0;
        let mut stack = vec![tx.load(self.root)?];
        while let Some(cur) = stack.pop() {
            if cur == 0 {
                continue;
            }
            n += 1;
            stack.push(self.child(tx, cur, LEFT)?);
            stack.push(self.child(tx, cur, RIGHT)?);
        }
        Ok(n)
    }

    // -------------- untimed validation helpers --------------

    /// In-order snapshot (untimed).
    pub fn snapshot(&self, mem: &lockiller::flatmem::FlatMem) -> Vec<(u64, u64)> {
        fn walk(mem: &lockiller::flatmem::FlatMem, cur: u64, out: &mut Vec<(u64, u64)>) {
            if cur == 0 {
                return;
            }
            walk(mem, mem.read(Addr(cur).add(LEFT)), out);
            out.push((mem.read(Addr(cur).add(KEY)), mem.read(Addr(cur).add(VAL))));
            walk(mem, mem.read(Addr(cur).add(RIGHT)), out);
        }
        let mut out = Vec::new();
        walk(mem, mem.read(self.root), &mut out);
        out
    }

    /// Check the red-black invariants on the final memory image:
    /// root black, no red node with a red child, equal black height on
    /// every path, parent pointers consistent, keys in BST order.
    pub fn check_invariants(&self, mem: &lockiller::flatmem::FlatMem) -> Result<(), String> {
        fn bh(
            mem: &lockiller::flatmem::FlatMem,
            n: u64,
            parent: u64,
            lo: Option<u64>,
            hi: Option<u64>,
        ) -> Result<u32, String> {
            if n == 0 {
                return Ok(1);
            }
            let a = Addr(n);
            let k = mem.read(a.add(KEY));
            if let Some(lo) = lo {
                if k <= lo {
                    return Err(format!("BST order violated at key {k}"));
                }
            }
            if let Some(hi) = hi {
                if k >= hi {
                    return Err(format!("BST order violated at key {k}"));
                }
            }
            if mem.read(a.add(PARENT)) != parent {
                return Err(format!("parent pointer wrong at key {k}"));
            }
            let c = mem.read(a.add(COLOR));
            let l = mem.read(a.add(LEFT));
            let r = mem.read(a.add(RIGHT));
            if c == RED {
                for ch in [l, r] {
                    if ch != 0 && mem.read(Addr(ch).add(COLOR)) == RED {
                        return Err(format!("red-red violation at key {k}"));
                    }
                }
            }
            let hl = bh(mem, l, n, lo, Some(k))?;
            let hr = bh(mem, r, n, Some(k), hi)?;
            if hl != hr {
                return Err(format!("black height mismatch at key {k}: {hl} vs {hr}"));
            }
            Ok(hl + if c == BLACK { 1 } else { 0 })
        }
        let root = mem.read(self.root);
        if root != 0 && mem.read(Addr(root).add(COLOR)) != BLACK {
            return Err("root is not black".into());
        }
        bh(mem, root, 0, None, None).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_tx;
    use std::sync::Mutex;

    fn with_tree(
        body: impl Fn(&mut TxCtx, &RbTree, &TmAlloc) -> Result<(), Abort> + Send + Sync,
    ) -> (RbTree, lockiller::flatmem::FlatMem) {
        let handles: Mutex<Option<(RbTree, TmAlloc)>> = Mutex::new(None);
        let mem = run_tx(
            |s| {
                let alloc = TmAlloc::setup(s, 1, 1 << 18);
                let t = RbTree::setup(s);
                *handles.lock().unwrap() = Some((t, alloc));
            },
            |tx| {
                let (t, alloc) = handles.lock().unwrap().unwrap();
                body(tx, &t, &alloc)
            },
        );
        (handles.into_inner().unwrap().unwrap().0, mem)
    }

    #[test]
    fn insert_find_and_invariants() {
        let (t, mem) = with_tree(|tx, t, alloc| {
            for k in [50u64, 20, 80, 10, 30, 70, 90, 5, 15, 25, 35] {
                assert!(t.insert(tx, alloc, k, k * 2)?);
            }
            assert!(!t.insert(tx, alloc, 50, 0)?);
            for k in [50u64, 20, 80, 10, 30, 70, 90] {
                assert_eq!(t.find(tx, k)?, Some(k * 2));
            }
            assert_eq!(t.find(tx, 55)?, None);
            Ok(())
        });
        t.check_invariants(&mem).expect("red-black invariants");
        let keys: Vec<u64> = t.snapshot(&mem).iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![5, 10, 15, 20, 25, 30, 35, 50, 70, 80, 90]);
    }

    #[test]
    fn ascending_insert_stays_balanced() {
        let (t, mem) = with_tree(|tx, t, alloc| {
            for k in 0..64u64 {
                t.insert(tx, alloc, k, k)?;
            }
            Ok(())
        });
        t.check_invariants(&mem)
            .expect("invariants after ascending inserts");
        assert_eq!(t.snapshot(&mem).len(), 64);
    }

    #[test]
    fn remove_keeps_invariants() {
        let (t, mem) = with_tree(|tx, t, alloc| {
            for k in 0..40u64 {
                t.insert(tx, alloc, k * 3, k)?;
            }
            // Remove a mix: leaves, single-child, two-child, root-ish.
            for k in [0u64, 21, 60, 117, 39, 57, 3] {
                assert_eq!(t.remove(tx, k)?, Some(k / 3), "remove {k}");
                assert_eq!(t.remove(tx, k)?, None);
            }
            assert_eq!(t.len(tx)?, 33);
            Ok(())
        });
        t.check_invariants(&mem).expect("invariants after removals");
    }

    #[test]
    fn update_in_place() {
        let (t, mem) = with_tree(|tx, t, alloc| {
            t.insert(tx, alloc, 7, 1)?;
            assert!(t.update(tx, 7, 99)?);
            assert!(!t.update(tx, 8, 0)?);
            assert_eq!(t.find(tx, 7)?, Some(99));
            Ok(())
        });
        t.check_invariants(&mem).unwrap();
    }

    #[test]
    fn drain_completely() {
        let (t, mem) = with_tree(|tx, t, alloc| {
            for k in [5u64, 3, 8, 1, 4, 7, 9, 2, 6] {
                t.insert(tx, alloc, k, k)?;
            }
            for k in 1..=9u64 {
                assert_eq!(t.remove(tx, k)?, Some(k));
            }
            assert_eq!(t.len(tx)?, 0);
            Ok(())
        });
        assert!(t.snapshot(&mem).is_empty());
        t.check_invariants(&mem).unwrap();
    }

    #[test]
    fn random_workout_against_btreemap() {
        use std::collections::BTreeMap;
        let mut rng = sim_core::rng::SimRng::new(2024);
        let ops: Vec<(u8, u64)> = (0..400)
            .map(|_| (rng.below(3) as u8, rng.below(80)))
            .collect();
        let ops2 = ops.clone();
        let results: Mutex<Vec<Option<u64>>> = Mutex::new(Vec::new());
        let results_ref = &results;
        let (t, mem) = with_tree(move |tx, t, alloc| {
            let mut out = Vec::new();
            for &(op, k) in &ops2 {
                match op {
                    0 => {
                        t.insert(tx, alloc, k, k + 7)?;
                    }
                    1 => out.push(t.remove(tx, k)?),
                    _ => out.push(t.find(tx, k)?),
                }
            }
            *results_ref.lock().unwrap() = out;
            Ok(())
        });
        t.check_invariants(&mem)
            .expect("invariants after random workout");
        let mut oracle = BTreeMap::new();
        let mut want = Vec::new();
        for &(op, k) in &ops {
            match op {
                0 => {
                    oracle.entry(k).or_insert(k + 7);
                }
                1 => want.push(oracle.remove(&k)),
                _ => want.push(oracle.get(&k).copied()),
            }
        }
        assert_eq!(*results.lock().unwrap(), want);
        let snap: Vec<(u64, u64)> = t.snapshot(&mem);
        let oracle_v: Vec<(u64, u64)> = oracle.into_iter().collect();
        assert_eq!(snap, oracle_v);
    }
}
