//! Sorted singly-linked list (STAMP `lib/list.c`): the workhorse of
//! genome's segment handling and the hashtable's buckets.
//!
//! Node layout: `[key, data, next]`. The list header is a single word
//! holding the first-node pointer (null = empty). Keys are unique;
//! inserting an existing key returns `false`.

use crate::alloc::TmAlloc;
use lockiller::flatmem::SetupCtx;
use lockiller::guest::{Abort, TxCtx};
use sim_core::types::Addr;

const KEY: u64 = 0;
const DATA: u64 = 1;
const NEXT: u64 = 2;
const NODE_WORDS: u64 = 3;

/// Handle to a transactional sorted list.
#[derive(Clone, Copy, Debug)]
pub struct List {
    head: Addr,
}

impl List {
    /// Allocate an empty list during setup.
    pub fn setup(s: &mut SetupCtx) -> List {
        let head = s.alloc(8);
        s.write(head, 0);
        List { head }
    }

    /// Create an empty list inside a transaction (nodes and header from
    /// the transactional allocator).
    pub fn create(tx: &mut TxCtx, alloc: &TmAlloc) -> Result<List, Abort> {
        let head = alloc.alloc(tx, 1)?;
        tx.store(head, 0)?;
        Ok(List { head })
    }

    /// Construct a handle from a raw header address (e.g., a hashtable
    /// bucket slot).
    pub fn at(head: Addr) -> List {
        List { head }
    }

    /// The header cell address (for untimed validation walks).
    pub fn head_addr(&self) -> Addr {
        self.head
    }

    /// Insert `key` with `data`; returns false if the key already exists.
    pub fn insert(
        &self,
        tx: &mut TxCtx,
        alloc: &TmAlloc,
        key: u64,
        data: u64,
    ) -> Result<bool, Abort> {
        let (prev, cur) = self.locate(tx, key)?;
        if let Some(cur) = cur {
            if tx.load(cur.add(KEY))? == key {
                return Ok(false);
            }
        }
        let node = alloc.alloc(tx, NODE_WORDS)?;
        tx.store(node.add(KEY), key)?;
        tx.store(node.add(DATA), data)?;
        tx.store(node.add(NEXT), cur.map_or(0, |c| c.0))?;
        match prev {
            None => tx.store(self.head, node.0)?,
            Some(p) => tx.store(p.add(NEXT), node.0)?,
        }
        Ok(true)
    }

    /// Remove `key`; returns its data if present. The node is abandoned
    /// (STAMP's allocator frees lazily; ours leaks within the arena).
    pub fn remove(&self, tx: &mut TxCtx, key: u64) -> Result<Option<u64>, Abort> {
        let (prev, cur) = self.locate(tx, key)?;
        let Some(cur) = cur else { return Ok(None) };
        if tx.load(cur.add(KEY))? != key {
            return Ok(None);
        }
        let next = tx.load(cur.add(NEXT))?;
        match prev {
            None => tx.store(self.head, next)?,
            Some(p) => tx.store(p.add(NEXT), next)?,
        }
        Ok(Some(tx.load(cur.add(DATA))?))
    }

    /// Look up `key`.
    pub fn find(&self, tx: &mut TxCtx, key: u64) -> Result<Option<u64>, Abort> {
        let (_, cur) = self.locate(tx, key)?;
        if let Some(cur) = cur {
            if tx.load(cur.add(KEY))? == key {
                return Ok(Some(tx.load(cur.add(DATA))?));
            }
        }
        Ok(None)
    }

    /// Update the data of an existing key; returns false if absent.
    pub fn update(&self, tx: &mut TxCtx, key: u64, data: u64) -> Result<bool, Abort> {
        let (_, cur) = self.locate(tx, key)?;
        if let Some(cur) = cur {
            if tx.load(cur.add(KEY))? == key {
                tx.store(cur.add(DATA), data)?;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Number of nodes (walks the list; O(n) reads join the read set).
    pub fn len(&self, tx: &mut TxCtx) -> Result<u64, Abort> {
        let mut n = 0;
        let mut cur = tx.load(self.head)?;
        while cur != 0 {
            n += 1;
            cur = tx.load(Addr(cur).add(NEXT))?;
        }
        Ok(n)
    }

    pub fn is_empty(&self, tx: &mut TxCtx) -> Result<bool, Abort> {
        Ok(tx.load(self.head)? == 0)
    }

    /// Collect `(key, data)` pairs in order.
    pub fn to_vec(&self, tx: &mut TxCtx) -> Result<Vec<(u64, u64)>, Abort> {
        let mut out = Vec::new();
        let mut cur = tx.load(self.head)?;
        while cur != 0 {
            let c = Addr(cur);
            out.push((tx.load(c.add(KEY))?, tx.load(c.add(DATA))?));
            cur = tx.load(c.add(NEXT))?;
        }
        Ok(out)
    }

    /// Find the first node with key >= `key` plus its predecessor.
    fn locate(&self, tx: &mut TxCtx, key: u64) -> Result<(Option<Addr>, Option<Addr>), Abort> {
        let mut prev: Option<Addr> = None;
        let mut cur = tx.load(self.head)?;
        while cur != 0 {
            let c = Addr(cur);
            let k = tx.load(c.add(KEY))?;
            if k >= key {
                return Ok((prev, Some(c)));
            }
            prev = Some(c);
            cur = tx.load(c.add(NEXT))?;
        }
        Ok((prev, None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_tx;
    use std::sync::Mutex;

    fn with_list(body: impl Fn(&mut TxCtx, &List, &TmAlloc) -> Result<(), Abort> + Send + Sync) {
        let handles: Mutex<Option<(List, TmAlloc)>> = Mutex::new(None);
        run_tx(
            |s| {
                let alloc = TmAlloc::setup(s, 1, 65536);
                let list = List::setup(s);
                *handles.lock().unwrap() = Some((list, alloc));
            },
            |tx| {
                let (list, alloc) = handles.lock().unwrap().unwrap();
                body(tx, &list, &alloc)
            },
        );
    }

    #[test]
    fn insert_find_remove() {
        with_list(|tx, list, alloc| {
            assert!(list.is_empty(tx)?);
            assert!(list.insert(tx, alloc, 5, 50)?);
            assert!(list.insert(tx, alloc, 3, 30)?);
            assert!(list.insert(tx, alloc, 9, 90)?);
            assert!(
                !list.insert(tx, alloc, 5, 55)?,
                "duplicate insert must fail"
            );
            assert_eq!(list.find(tx, 3)?, Some(30));
            assert_eq!(list.find(tx, 5)?, Some(50));
            assert_eq!(list.find(tx, 4)?, None);
            assert_eq!(list.len(tx)?, 3);
            assert_eq!(list.remove(tx, 3)?, Some(30));
            assert_eq!(list.remove(tx, 3)?, None);
            assert_eq!(list.len(tx)?, 2);
            Ok(())
        });
    }

    #[test]
    fn stays_sorted() {
        with_list(|tx, list, alloc| {
            for k in [7u64, 1, 9, 4, 2, 8] {
                list.insert(tx, alloc, k, k * 10)?;
            }
            let v = list.to_vec(tx)?;
            let keys: Vec<u64> = v.iter().map(|(k, _)| *k).collect();
            assert_eq!(keys, vec![1, 2, 4, 7, 8, 9]);
            Ok(())
        });
    }

    #[test]
    fn update_existing() {
        with_list(|tx, list, alloc| {
            list.insert(tx, alloc, 1, 10)?;
            assert!(list.update(tx, 1, 99)?);
            assert!(!list.update(tx, 2, 0)?);
            assert_eq!(list.find(tx, 1)?, Some(99));
            Ok(())
        });
    }

    #[test]
    fn remove_head_and_tail() {
        with_list(|tx, list, alloc| {
            for k in [1u64, 2, 3] {
                list.insert(tx, alloc, k, k)?;
            }
            assert_eq!(list.remove(tx, 1)?, Some(1));
            assert_eq!(list.remove(tx, 3)?, Some(3));
            assert_eq!(list.to_vec(tx)?, vec![(2, 2)]);
            Ok(())
        });
    }
}
