//! Transactional ordered map.
//!
//! STAMP's vacation and intruder use red-black trees; we implement a
//! **treap** (randomized BST with deterministic per-key priorities derived
//! from a hash of the key). The conflict profile matches the rbtree's:
//! lookups and updates walk a root-biased path of O(log n) nodes, so
//! concurrent transactions conflict near the root exactly as they do on
//! STAMP's rbtree — which is what the paper's contention behaviour depends
//! on. Rotations are local, like rbtree recolor/rotate fixups.
//!
//! Node layout: `[key, value, prio, left, right]`.

use crate::alloc::TmAlloc;
use lockiller::flatmem::SetupCtx;
use lockiller::guest::{Abort, TxCtx};
use sim_core::fxhash::hash_u64;
use sim_core::types::Addr;

const KEY: u64 = 0;
const VAL: u64 = 1;
const PRI: u64 = 2;
const LEFT: u64 = 3;
const RIGHT: u64 = 4;
const NODE_WORDS: u64 = 5;

/// Deterministic heap priority for a key (independent of insertion order,
/// so the tree shape is identical across systems and runs).
fn tree_prio(key: u64) -> u64 {
    hash_u64(key ^ 0x7f4a_7c15_9e37_79b9)
}

/// Handle to a transactional ordered map (unique keys).
#[derive(Clone, Copy, Debug)]
pub struct TMap {
    /// Root pointer cell.
    root: Addr,
}

impl TMap {
    pub fn setup(s: &mut SetupCtx) -> TMap {
        let root = s.alloc(8);
        s.write(root, 0);
        TMap { root }
    }

    /// Seed during untimed setup.
    pub fn setup_insert(&self, s: &mut SetupCtx, key: u64, value: u64) -> bool {
        // Build via the same structural algorithm, operating directly.
        let node = s.alloc(NODE_WORDS);
        s.write(node.add(KEY), key);
        s.write(node.add(VAL), value);
        s.write(node.add(PRI), tree_prio(key));
        s.write(node.add(LEFT), 0);
        s.write(node.add(RIGHT), 0);
        let root = s.read(self.root);
        match Self::setup_insert_rec(s, root, node) {
            Some(new_root) => {
                s.write(self.root, new_root);
                true
            }
            None => false,
        }
    }

    fn setup_insert_rec(s: &mut SetupCtx, cur: u64, node: Addr) -> Option<u64> {
        if cur == 0 {
            return Some(node.0);
        }
        let c = Addr(cur);
        let ck = s.read(c.add(KEY));
        let nk = s.read(node.add(KEY));
        if nk == ck {
            return None;
        }
        let dir = if nk < ck { LEFT } else { RIGHT };
        let child = s.read(c.add(dir));
        let new_child = Self::setup_insert_rec(s, child, node)?;
        s.write(c.add(dir), new_child);
        // Rotate if heap property violated.
        let nc = Addr(new_child);
        if s.read(nc.add(PRI)) > s.read(c.add(PRI)) {
            // Rotate nc above c.
            let (take, give) = if dir == LEFT {
                (RIGHT, LEFT)
            } else {
                (LEFT, RIGHT)
            };
            let moved = s.read(nc.add(take));
            s.write(c.add(give), moved);
            s.write(nc.add(take), cur);
            Some(new_child)
        } else {
            Some(cur)
        }
    }

    pub fn find(&self, tx: &mut TxCtx, key: u64) -> Result<Option<u64>, Abort> {
        let mut cur = tx.load(self.root)?;
        while cur != 0 {
            let c = Addr(cur);
            let k = tx.load(c.add(KEY))?;
            if k == key {
                return Ok(Some(tx.load(c.add(VAL))?));
            }
            cur = tx.load(c.add(if key < k { LEFT } else { RIGHT }))?;
        }
        Ok(None)
    }

    pub fn contains(&self, tx: &mut TxCtx, key: u64) -> Result<bool, Abort> {
        Ok(self.find(tx, key)?.is_some())
    }

    /// Update the value of an existing key; false if absent.
    pub fn update(&self, tx: &mut TxCtx, key: u64, value: u64) -> Result<bool, Abort> {
        let mut cur = tx.load(self.root)?;
        while cur != 0 {
            let c = Addr(cur);
            let k = tx.load(c.add(KEY))?;
            if k == key {
                tx.store(c.add(VAL), value)?;
                return Ok(true);
            }
            cur = tx.load(c.add(if key < k { LEFT } else { RIGHT }))?;
        }
        Ok(false)
    }

    /// Insert; false if the key already exists.
    pub fn insert(
        &self,
        tx: &mut TxCtx,
        alloc: &TmAlloc,
        key: u64,
        value: u64,
    ) -> Result<bool, Abort> {
        // Descend recording the path (cell that points at each node).
        let mut path: Vec<(Addr, u64)> = Vec::new(); // (node, dir taken)
        let mut cur = tx.load(self.root)?;
        while cur != 0 {
            let c = Addr(cur);
            let k = tx.load(c.add(KEY))?;
            if k == key {
                return Ok(false);
            }
            let dir = if key < k { LEFT } else { RIGHT };
            path.push((c, dir));
            cur = tx.load(c.add(dir))?;
        }
        let node = alloc.alloc(tx, NODE_WORDS)?;
        tx.store(node.add(KEY), key)?;
        tx.store(node.add(VAL), value)?;
        let prio = tree_prio(key);
        tx.store(node.add(PRI), prio)?;
        tx.store(node.add(LEFT), 0)?;
        tx.store(node.add(RIGHT), 0)?;
        // Attach.
        match path.last() {
            None => tx.store(self.root, node.0)?,
            Some((p, dir)) => tx.store(p.add(*dir), node.0)?,
        }
        // Rotate up while the heap property is violated.
        let child = node;
        while let Some((parent, dir)) = path.pop() {
            let parent_prio = tx.load(parent.add(PRI))?;
            if prio <= parent_prio {
                break;
            }
            // Rotate child above parent.
            let (take, give) = if dir == LEFT {
                (RIGHT, LEFT)
            } else {
                (LEFT, RIGHT)
            };
            let moved = tx.load(child.add(take))?;
            tx.store(parent.add(dir), moved)?;
            let _ = give;
            tx.store(child.add(take), parent.0)?;
            // Reattach child to grandparent.
            match path.last() {
                None => tx.store(self.root, child.0)?,
                Some((gp, gdir)) => tx.store(gp.add(*gdir), child.0)?,
            }
        }
        Ok(true)
    }

    /// Remove `key`; returns its value if present. The node is rotated
    /// down to a leaf and unlinked.
    pub fn remove(&self, tx: &mut TxCtx, key: u64) -> Result<Option<u64>, Abort> {
        // Find the cell pointing at the node.
        let mut cell = self.root;
        let mut cur = tx.load(cell)?;
        while cur != 0 {
            let c = Addr(cur);
            let k = tx.load(c.add(KEY))?;
            if k == key {
                break;
            }
            cell = c.add(if key < k { LEFT } else { RIGHT });
            cur = tx.load(cell)?;
        }
        if cur == 0 {
            return Ok(None);
        }
        let node = Addr(cur);
        let value = tx.load(node.add(VAL))?;
        // Rotate the node down until it has at most one child, then splice.
        loop {
            let l = tx.load(node.add(LEFT))?;
            let r = tx.load(node.add(RIGHT))?;
            if l == 0 || r == 0 {
                let child = if l != 0 { l } else { r };
                tx.store(cell, child)?;
                break;
            }
            // Rotate the higher-priority child above the node.
            let (lp, rp) = (tx.load(Addr(l).add(PRI))?, tx.load(Addr(r).add(PRI))?);
            if lp > rp {
                // Right-rotate: left child up.
                let lc = Addr(l);
                let moved = tx.load(lc.add(RIGHT))?;
                tx.store(node.add(LEFT), moved)?;
                tx.store(lc.add(RIGHT), node.0)?;
                tx.store(cell, lc.0)?;
                cell = lc.add(RIGHT);
            } else {
                // Left-rotate: right child up.
                let rc = Addr(r);
                let moved = tx.load(rc.add(LEFT))?;
                tx.store(node.add(RIGHT), moved)?;
                tx.store(rc.add(LEFT), node.0)?;
                tx.store(cell, rc.0)?;
                cell = rc.add(LEFT);
            }
        }
        Ok(Some(value))
    }

    /// Number of entries (walks the whole tree).
    pub fn len(&self, tx: &mut TxCtx) -> Result<u64, Abort> {
        let mut n = 0;
        let mut stack = vec![tx.load(self.root)?];
        while let Some(cur) = stack.pop() {
            if cur == 0 {
                continue;
            }
            n += 1;
            let c = Addr(cur);
            stack.push(tx.load(c.add(LEFT))?);
            stack.push(tx.load(c.add(RIGHT))?);
        }
        Ok(n)
    }

    /// Untimed in-order snapshot for validation oracles.
    pub fn snapshot(&self, mem: &lockiller::flatmem::FlatMem) -> Vec<(u64, u64)> {
        fn walk(mem: &lockiller::flatmem::FlatMem, cur: u64, out: &mut Vec<(u64, u64)>) {
            if cur == 0 {
                return;
            }
            let c = Addr(cur);
            walk(mem, mem.read(c.add(LEFT)), out);
            out.push((mem.read(c.add(KEY)), mem.read(c.add(VAL))));
            walk(mem, mem.read(c.add(RIGHT)), out);
        }
        let mut out = Vec::new();
        walk(mem, mem.read(self.root), &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_tx;
    use std::sync::Mutex;

    fn with_map(
        body: impl Fn(&mut TxCtx, &TMap, &TmAlloc) -> Result<(), Abort> + Send + Sync,
    ) -> (TMap, lockiller::flatmem::FlatMem) {
        let handles: Mutex<Option<(TMap, TmAlloc)>> = Mutex::new(None);
        let mem = run_tx(
            |s| {
                let alloc = TmAlloc::setup(s, 1, 1 << 18);
                let m = TMap::setup(s);
                *handles.lock().unwrap() = Some((m, alloc));
            },
            |tx| {
                let (m, alloc) = handles.lock().unwrap().unwrap();
                body(tx, &m, &alloc)
            },
        );
        (handles.into_inner().unwrap().unwrap().0, mem)
    }

    #[test]
    fn insert_find() {
        with_map(|tx, m, alloc| {
            for k in [50u64, 20, 80, 10, 30, 70, 90] {
                assert!(m.insert(tx, alloc, k, k * 2)?);
            }
            assert!(!m.insert(tx, alloc, 50, 0)?);
            for k in [50u64, 20, 80, 10, 30, 70, 90] {
                assert_eq!(m.find(tx, k)?, Some(k * 2));
            }
            assert_eq!(m.find(tx, 55)?, None);
            assert_eq!(m.len(tx)?, 7);
            Ok(())
        });
    }

    #[test]
    fn snapshot_is_sorted_inorder() {
        let (m, mem) = with_map(|tx, m, alloc| {
            for k in [9u64, 3, 7, 1, 5, 8, 2, 6, 4] {
                m.insert(tx, alloc, k, k)?;
            }
            Ok(())
        });
        let snap = m.snapshot(&mem);
        let keys: Vec<u64> = snap.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (1..=9).collect::<Vec<_>>());
    }

    #[test]
    fn remove_rebalances() {
        with_map(|tx, m, alloc| {
            for k in 0..50u64 {
                m.insert(tx, alloc, k * 3, k)?;
            }
            assert_eq!(m.remove(tx, 21)?, Some(7));
            assert_eq!(m.remove(tx, 21)?, None);
            assert_eq!(m.remove(tx, 0)?, Some(0));
            assert_eq!(m.len(tx)?, 48);
            // Remaining keys still reachable.
            for k in 1..50u64 {
                if k == 7 {
                    continue;
                }
                assert_eq!(m.find(tx, k * 3)?, Some(k), "key {}", k * 3);
            }
            Ok(())
        });
    }

    #[test]
    fn update_value() {
        with_map(|tx, m, alloc| {
            m.insert(tx, alloc, 5, 1)?;
            assert!(m.update(tx, 5, 42)?);
            assert!(!m.update(tx, 6, 0)?);
            assert_eq!(m.find(tx, 5)?, Some(42));
            Ok(())
        });
    }

    #[test]
    fn setup_insert_agrees_with_tx_view() {
        let handles: Mutex<Option<TMap>> = Mutex::new(None);
        run_tx(
            |s| {
                let m = TMap::setup(s);
                for k in [4u64, 2, 6, 1, 3, 5, 7] {
                    assert!(m.setup_insert(s, k, k * 10));
                }
                assert!(!m.setup_insert(s, 4, 0));
                *handles.lock().unwrap() = Some(m);
            },
            |tx| {
                let m = handles.lock().unwrap().unwrap();
                for k in 1..=7u64 {
                    assert_eq!(m.find(tx, k)?, Some(k * 10));
                }
                assert_eq!(m.len(tx)?, 7);
                Ok(())
            },
        );
    }

    #[test]
    fn mixed_workout_against_std_btree() {
        use std::collections::BTreeMap;
        let ops: Mutex<Vec<(u8, u64)>> = Mutex::new({
            let mut rng = sim_core::rng::SimRng::new(99);
            (0..300)
                .map(|_| ((rng.below(3)) as u8, rng.below(60)))
                .collect()
        });
        let (m, mem) = with_map(|tx, m, alloc| {
            for &(op, k) in ops.lock().unwrap().iter() {
                match op {
                    0 => {
                        m.insert(tx, alloc, k, k + 1000)?;
                    }
                    1 => {
                        m.remove(tx, k)?;
                    }
                    _ => {
                        m.find(tx, k)?;
                    }
                }
            }
            Ok(())
        });
        let mut oracle = BTreeMap::new();
        for &(op, k) in ops.lock().unwrap().iter() {
            match op {
                0 => {
                    oracle.entry(k).or_insert(k + 1000);
                }
                1 => {
                    oracle.remove(&k);
                }
                _ => {}
            }
        }
        let want: Vec<(u64, u64)> = oracle.into_iter().collect();
        assert_eq!(m.snapshot(&mem), want);
    }
}
