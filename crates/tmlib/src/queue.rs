//! Transactional FIFO queue (STAMP `lib/queue.c`): intruder's packet and
//! task queues.
//!
//! Linked-list FIFO; header layout: `[head, tail]`, node layout
//! `[value, next]`. Push appends at the tail, pop takes from the head, so
//! uncontended producers and consumers touch different lines.

use crate::alloc::TmAlloc;
use lockiller::flatmem::SetupCtx;
use lockiller::guest::{Abort, TxCtx};
use sim_core::types::Addr;

const HEAD: u64 = 0;
const TAIL: u64 = 1;
const VAL: u64 = 0;
const NEXT: u64 = 1;
const NODE_WORDS: u64 = 2;

/// Handle to a transactional FIFO queue.
#[derive(Clone, Copy, Debug)]
pub struct Queue {
    hdr: Addr,
}

impl Queue {
    pub fn setup(s: &mut SetupCtx) -> Queue {
        let hdr = s.alloc(8);
        s.write(hdr.add(HEAD), 0);
        s.write(hdr.add(TAIL), 0);
        Queue { hdr }
    }

    /// Seed the queue with values during (untimed) setup.
    pub fn setup_push(&self, s: &mut SetupCtx, value: u64) {
        let node = s.alloc(NODE_WORDS);
        s.write(node.add(VAL), value);
        s.write(node.add(NEXT), 0);
        let tail = s.read(self.hdr.add(TAIL));
        if tail == 0 {
            s.write(self.hdr.add(HEAD), node.0);
        } else {
            s.write(Addr(tail).add(NEXT), node.0);
        }
        s.write(self.hdr.add(TAIL), node.0);
    }

    pub fn push(&self, tx: &mut TxCtx, alloc: &TmAlloc, value: u64) -> Result<(), Abort> {
        let node = alloc.alloc(tx, NODE_WORDS)?;
        tx.store(node.add(VAL), value)?;
        tx.store(node.add(NEXT), 0)?;
        let tail = tx.load(self.hdr.add(TAIL))?;
        if tail == 0 {
            tx.store(self.hdr.add(HEAD), node.0)?;
        } else {
            tx.store(Addr(tail).add(NEXT), node.0)?;
        }
        tx.store(self.hdr.add(TAIL), node.0)?;
        Ok(())
    }

    pub fn pop(&self, tx: &mut TxCtx) -> Result<Option<u64>, Abort> {
        let head = tx.load(self.hdr.add(HEAD))?;
        if head == 0 {
            return Ok(None);
        }
        let node = Addr(head);
        let next = tx.load(node.add(NEXT))?;
        tx.store(self.hdr.add(HEAD), next)?;
        if next == 0 {
            tx.store(self.hdr.add(TAIL), 0)?;
        }
        Ok(Some(tx.load(node.add(VAL))?))
    }

    pub fn is_empty(&self, tx: &mut TxCtx) -> Result<bool, Abort> {
        Ok(tx.load(self.hdr.add(HEAD))? == 0)
    }

    pub fn len(&self, tx: &mut TxCtx) -> Result<u64, Abort> {
        let mut n = 0;
        let mut cur = tx.load(self.hdr.add(HEAD))?;
        while cur != 0 {
            n += 1;
            cur = tx.load(Addr(cur).add(NEXT))?;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_tx;
    use std::sync::Mutex;

    fn with_queue(
        seed: &'static [u64],
        body: impl Fn(&mut TxCtx, &Queue, &TmAlloc) -> Result<(), Abort> + Send + Sync,
    ) {
        let handles: Mutex<Option<(Queue, TmAlloc)>> = Mutex::new(None);
        let handles = &handles;
        run_tx(
            move |s| {
                let alloc = TmAlloc::setup(s, 1, 65536);
                let q = Queue::setup(s);
                for &v in seed {
                    q.setup_push(s, v);
                }
                *handles.lock().unwrap() = Some((q, alloc));
            },
            |tx| {
                let (q, alloc) = handles.lock().unwrap().unwrap();
                body(tx, &q, &alloc)
            },
        );
    }

    #[test]
    fn fifo_order() {
        with_queue(&[], |tx, q, alloc| {
            assert!(q.is_empty(tx)?);
            for v in [10u64, 20, 30] {
                q.push(tx, alloc, v)?;
            }
            assert_eq!(q.len(tx)?, 3);
            assert_eq!(q.pop(tx)?, Some(10));
            assert_eq!(q.pop(tx)?, Some(20));
            q.push(tx, alloc, 40)?;
            assert_eq!(q.pop(tx)?, Some(30));
            assert_eq!(q.pop(tx)?, Some(40));
            assert_eq!(q.pop(tx)?, None);
            assert!(q.is_empty(tx)?);
            Ok(())
        });
    }

    #[test]
    fn setup_seeding() {
        with_queue(&[1, 2, 3], |tx, q, _| {
            assert_eq!(q.pop(tx)?, Some(1));
            assert_eq!(q.pop(tx)?, Some(2));
            assert_eq!(q.pop(tx)?, Some(3));
            assert_eq!(q.pop(tx)?, None);
            Ok(())
        });
    }

    #[test]
    fn drain_and_refill() {
        with_queue(&[5], |tx, q, alloc| {
            assert_eq!(q.pop(tx)?, Some(5));
            assert!(q.is_empty(tx)?);
            q.push(tx, alloc, 6)?;
            assert_eq!(q.pop(tx)?, Some(6));
            Ok(())
        });
    }
}
