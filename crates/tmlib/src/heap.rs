//! Transactional binary max-heap (STAMP `lib/heap.c`): yada's work queue
//! of bad triangles.
//!
//! Fixed-capacity array heap. Layout: `[len, cap, elem0, elem1, ...]`.
//! Every push/pop touches the `len` word, so concurrent users serialize on
//! the header line — exactly the hotspot STAMP's heap exhibits.

use lockiller::flatmem::SetupCtx;
use lockiller::guest::{Abort, TxCtx};
use sim_core::types::Addr;

const LEN: u64 = 0;
const CAP: u64 = 1;
const ELEMS: u64 = 2;

/// Handle to a transactional binary max-heap of u64 values.
#[derive(Clone, Copy, Debug)]
pub struct Heap {
    base: Addr,
}

impl Heap {
    pub fn setup(s: &mut SetupCtx, capacity: u64) -> Heap {
        let base = s.alloc(ELEMS + capacity);
        s.write(base.add(LEN), 0);
        s.write(base.add(CAP), capacity);
        Heap { base }
    }

    /// Seed during untimed setup.
    pub fn setup_push(&self, s: &mut SetupCtx, value: u64) {
        let len = s.read(self.base.add(LEN));
        let cap = s.read(self.base.add(CAP));
        assert!(len < cap, "heap overflow in setup");
        s.write(self.base.add(ELEMS + len), value);
        s.write(self.base.add(LEN), len + 1);
        // Sift up.
        let mut i = len;
        while i > 0 {
            let parent = (i - 1) / 2;
            let pv = s.read(self.base.add(ELEMS + parent));
            let cv = s.read(self.base.add(ELEMS + i));
            if cv <= pv {
                break;
            }
            s.write(self.base.add(ELEMS + parent), cv);
            s.write(self.base.add(ELEMS + i), pv);
            i = parent;
        }
    }

    pub fn push(&self, tx: &mut TxCtx, value: u64) -> Result<(), Abort> {
        let len = tx.load(self.base.add(LEN))?;
        let cap = tx.load(self.base.add(CAP))?;
        assert!(len < cap, "heap overflow");
        tx.store(self.base.add(ELEMS + len), value)?;
        tx.store(self.base.add(LEN), len + 1)?;
        let mut i = len;
        while i > 0 {
            let parent = (i - 1) / 2;
            let pv = tx.load(self.base.add(ELEMS + parent))?;
            let cv = tx.load(self.base.add(ELEMS + i))?;
            if cv <= pv {
                break;
            }
            tx.store(self.base.add(ELEMS + parent), cv)?;
            tx.store(self.base.add(ELEMS + i), pv)?;
            i = parent;
        }
        Ok(())
    }

    /// Pop the maximum; `None` when empty.
    pub fn pop(&self, tx: &mut TxCtx) -> Result<Option<u64>, Abort> {
        let len = tx.load(self.base.add(LEN))?;
        if len == 0 {
            return Ok(None);
        }
        let top = tx.load(self.base.add(ELEMS))?;
        let last = tx.load(self.base.add(ELEMS + len - 1))?;
        tx.store(self.base.add(LEN), len - 1)?;
        let n = len - 1;
        if n == 0 {
            return Ok(Some(top));
        }
        tx.store(self.base.add(ELEMS), last)?;
        // Sift down.
        let mut i = 0u64;
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            if l >= n {
                break;
            }
            let mut big = l;
            let mut bv = tx.load(self.base.add(ELEMS + l))?;
            if r < n {
                let rv = tx.load(self.base.add(ELEMS + r))?;
                if rv > bv {
                    big = r;
                    bv = rv;
                }
            }
            let cv = tx.load(self.base.add(ELEMS + i))?;
            if cv >= bv {
                break;
            }
            tx.store(self.base.add(ELEMS + i), bv)?;
            tx.store(self.base.add(ELEMS + big), cv)?;
            i = big;
        }
        Ok(Some(top))
    }

    pub fn len(&self, tx: &mut TxCtx) -> Result<u64, Abort> {
        tx.load(self.base.add(LEN))
    }

    pub fn is_empty(&self, tx: &mut TxCtx) -> Result<bool, Abort> {
        Ok(self.len(tx)? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_tx;
    use std::sync::Mutex;

    fn with_heap(
        seed: &'static [u64],
        body: impl Fn(&mut TxCtx, &Heap) -> Result<(), Abort> + Send + Sync,
    ) {
        let handles: Mutex<Option<Heap>> = Mutex::new(None);
        let handles = &handles;
        run_tx(
            move |s| {
                let h = Heap::setup(s, 256);
                for &v in seed {
                    h.setup_push(s, v);
                }
                *handles.lock().unwrap() = Some(h);
            },
            |tx| {
                let h = handles.lock().unwrap().unwrap();
                body(tx, &h)
            },
        );
    }

    #[test]
    fn pops_in_descending_order() {
        with_heap(&[], |tx, h| {
            for v in [5u64, 1, 9, 3, 7, 2, 8] {
                h.push(tx, v)?;
            }
            let mut got = Vec::new();
            while let Some(v) = h.pop(tx)? {
                got.push(v);
            }
            assert_eq!(got, vec![9, 8, 7, 5, 3, 2, 1]);
            Ok(())
        });
    }

    #[test]
    fn setup_seed_heapifies() {
        with_heap(&[4, 9, 1, 6], |tx, h| {
            assert_eq!(h.len(tx)?, 4);
            assert_eq!(h.pop(tx)?, Some(9));
            assert_eq!(h.pop(tx)?, Some(6));
            h.push(tx, 100)?;
            assert_eq!(h.pop(tx)?, Some(100));
            assert_eq!(h.pop(tx)?, Some(4));
            assert_eq!(h.pop(tx)?, Some(1));
            assert_eq!(h.pop(tx)?, None);
            Ok(())
        });
    }

    #[test]
    fn duplicates_preserved() {
        with_heap(&[], |tx, h| {
            for v in [3u64, 3, 3, 1] {
                h.push(tx, v)?;
            }
            assert_eq!(h.pop(tx)?, Some(3));
            assert_eq!(h.pop(tx)?, Some(3));
            assert_eq!(h.pop(tx)?, Some(3));
            assert_eq!(h.pop(tx)?, Some(1));
            Ok(())
        });
    }
}
