//! Transactional data structures over simulated memory — the STAMP
//! workloads' building blocks (`lib/` in the original suite).
//!
//! Every structure lives entirely in the simulated address space and is
//! manipulated through [`lockiller::TxCtx`] operations that return
//! `Result<_, Abort>`: a conflict unwinds the whole critical section via
//! `?` and the runtime retries it, exactly as the STAMP macros
//! (`TM_READ`/`TM_WRITE`) behave on real best-effort HTM.
//!
//! Layout convention: a "struct" is a run of consecutive words; field
//! accessors are `base.add(OFFSET)`. Allocation goes through [`TmAlloc`],
//! whose bump pointers also live in simulated memory so that aborted
//! transactions automatically roll their allocations back — and whose
//! page-crossing touches raise the demand-paging faults that make
//! allocation-heavy STAMP workloads (yada, labyrinth) abort on
//! best-effort HTM.

pub mod alloc;
pub mod bitmap;
pub mod hashtable;
pub mod heap;
pub mod list;
pub mod queue;
pub mod rbtree;
pub mod tmap;

pub use alloc::TmAlloc;
pub use bitmap::Bitmap;
pub use hashtable::HashTable;
pub use heap::Heap;
pub use list::List;
pub use queue::Queue;
pub use rbtree::RbTree;
pub use tmap::TMap;

use lockiller::guest::{Abort, TxCtx};
use sim_core::types::Addr;

/// Read a struct field at word offset `off`.
#[inline]
pub fn get(tx: &mut TxCtx, base: Addr, off: u64) -> Result<u64, Abort> {
    tx.load(base.add(off))
}

/// Write a struct field at word offset `off`.
#[inline]
pub fn set(tx: &mut TxCtx, base: Addr, off: u64, v: u64) -> Result<(), Abort> {
    tx.store(base.add(off), v)
}

#[cfg(test)]
pub(crate) mod testutil {
    //! A microscopic single-threaded harness: runs a closure as one
    //! transaction on a 1-core simulated system so data-structure tests
    //! exercise the real TxCtx path.

    use lockiller::flatmem::{FlatMem, SetupCtx};
    use lockiller::guest::{Abort, GuestCtx, TxCtx};
    use lockiller::program::Program;
    use lockiller::runner::Runner;
    use lockiller::system::SystemKind;
    use sim_core::config::SystemConfig;

    pub struct OneShot<S, F> {
        pub setup_fn: S,
        pub body: F,
    }

    impl<S, F> Program for OneShot<S, F>
    where
        S: FnMut(&mut SetupCtx) + Send + Sync,
        F: Fn(&mut TxCtx) -> Result<(), Abort> + Send + Sync,
    {
        fn name(&self) -> &str {
            "oneshot"
        }

        fn setup(&mut self, s: &mut SetupCtx, _threads: usize) {
            (self.setup_fn)(s);
        }

        fn run(&self, ctx: &mut GuestCtx) {
            ctx.critical(|tx| (self.body)(tx));
        }
    }

    /// Run `setup` then `body` (as a single transaction on one core) and
    /// return the final memory image.
    pub fn run_tx(
        setup: impl FnMut(&mut SetupCtx) + Send + Sync,
        body: impl Fn(&mut TxCtx) -> Result<(), Abort> + Send + Sync,
    ) -> FlatMem {
        let mut prog = OneShot {
            setup_fn: setup,
            body,
        };
        Runner::new(SystemKind::LockillerTm)
            .threads(1)
            .config(SystemConfig::testing(2))
            .run(&mut prog)
            .mem
    }
}
