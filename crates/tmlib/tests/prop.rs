//! Property tests: transactional data structures against std oracles,
//! executed through the real simulator TxCtx path (single core).

use lockiller::flatmem::SetupCtx;
use lockiller::guest::{Abort, GuestCtx, TxCtx};
use lockiller::program::Program;
use lockiller::runner::Runner;
use lockiller::system::SystemKind;
use proptest::prelude::*;
use sim_core::config::SystemConfig;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;
use tmlib::{Heap, List, Queue, RbTree, TMap, TmAlloc};

/// Run a closure as one transaction on a 1-core simulated system.
fn run_tx(
    setup: impl FnMut(&mut SetupCtx) + Send + Sync,
    body: impl Fn(&mut TxCtx) -> Result<(), Abort> + Send + Sync,
) {
    struct P<S, F> {
        setup_fn: S,
        body: F,
    }
    impl<S, F> Program for P<S, F>
    where
        S: FnMut(&mut SetupCtx) + Send + Sync,
        F: Fn(&mut TxCtx) -> Result<(), Abort> + Send + Sync,
    {
        fn name(&self) -> &str {
            "prop"
        }
        fn setup(&mut self, s: &mut SetupCtx, _t: usize) {
            (self.setup_fn)(s);
        }
        fn run(&self, ctx: &mut GuestCtx) {
            ctx.critical(|tx| (self.body)(tx));
        }
    }
    let mut prog = P {
        setup_fn: setup,
        body,
    };
    let _ = Runner::new(SystemKind::LockillerTm)
        .threads(1)
        .config(SystemConfig::testing(2))
        .run(&mut prog);
}

#[derive(Clone, Debug)]
enum MapOp {
    Insert(u64, u64),
    Remove(u64),
    Find(u64),
    Update(u64, u64),
}

fn map_op_strategy() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        (0u64..50, any::<u64>()).prop_map(|(k, v)| MapOp::Insert(k, v)),
        (0u64..50).prop_map(MapOp::Remove),
        (0u64..50).prop_map(MapOp::Find),
        (0u64..50, any::<u64>()).prop_map(|(k, v)| MapOp::Update(k, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn tmap_matches_btreemap(ops in prop::collection::vec(map_op_strategy(), 1..120)) {
        let handles: Mutex<Option<(TMap, TmAlloc)>> = Mutex::new(None);
        let results: Mutex<Vec<Option<u64>>> = Mutex::new(Vec::new());
        let ops2 = ops.clone();
        run_tx(
            |s| {
                let alloc = TmAlloc::setup(s, 1, 1 << 18);
                let m = TMap::setup(s);
                *handles.lock().unwrap() = Some((m, alloc));
            },
            |tx| {
                let (m, alloc) = handles.lock().unwrap().unwrap();
                let mut out = Vec::new();
                for op in &ops2 {
                    match *op {
                        MapOp::Insert(k, v) => {
                            out.push(Some(m.insert(tx, &alloc, k, v)? as u64));
                        }
                        MapOp::Remove(k) => out.push(m.remove(tx, k)?),
                        MapOp::Find(k) => out.push(m.find(tx, k)?),
                        MapOp::Update(k, v) => {
                            out.push(Some(m.update(tx, k, v)? as u64));
                        }
                    }
                }
                *results.lock().unwrap() = out;
                Ok(())
            },
        );
        // Oracle.
        let mut oracle = BTreeMap::new();
        let mut want = Vec::new();
        for op in &ops {
            match *op {
                MapOp::Insert(k, v) => {
                    let fresh = !oracle.contains_key(&k);
                    if fresh {
                        oracle.insert(k, v);
                    }
                    want.push(Some(fresh as u64));
                }
                MapOp::Remove(k) => want.push(oracle.remove(&k)),
                MapOp::Find(k) => want.push(oracle.get(&k).copied()),
                MapOp::Update(k, v) => {
                    let hit = oracle.contains_key(&k);
                    if hit {
                        oracle.insert(k, v);
                    }
                    want.push(Some(hit as u64));
                }
            }
        }
        prop_assert_eq!(results.into_inner().unwrap(), want);
    }

    #[test]
    fn rbtree_matches_btreemap_with_invariants(ops in prop::collection::vec(map_op_strategy(), 1..120)) {
        let handles: Mutex<Option<(RbTree, TmAlloc)>> = Mutex::new(None);
        let results: Mutex<Vec<Option<u64>>> = Mutex::new(Vec::new());
        let final_mem: Mutex<Option<lockiller::flatmem::FlatMem>> = Mutex::new(None);
        let ops2 = ops.clone();
        {
            struct P<'a> {
                ops: &'a [MapOp],
                handles: &'a Mutex<Option<(RbTree, TmAlloc)>>,
                results: &'a Mutex<Vec<Option<u64>>>,
            }
            impl Program for P<'_> {
                fn name(&self) -> &str {
                    "rb-prop"
                }
                fn setup(&mut self, s: &mut SetupCtx, _t: usize) {
                    let alloc = TmAlloc::setup(s, 1, 1 << 18);
                    let t = RbTree::setup(s);
                    *self.handles.lock().unwrap() = Some((t, alloc));
                }
                fn run(&self, ctx: &mut GuestCtx) {
                    let (t, alloc) = self.handles.lock().unwrap().unwrap();
                    let mut out = Vec::new();
                    ctx.critical(|tx| {
                        out.clear();
                        for op in self.ops {
                            match *op {
                                MapOp::Insert(k, v) => {
                                    out.push(Some(t.insert(tx, &alloc, k, v)? as u64));
                                }
                                MapOp::Remove(k) => out.push(t.remove(tx, k)?),
                                MapOp::Find(k) => out.push(t.find(tx, k)?),
                                MapOp::Update(k, v) => {
                                    out.push(Some(t.update(tx, k, v)? as u64));
                                }
                            }
                        }
                        Ok(())
                    });
                    *self.results.lock().unwrap() = out;
                }
            }
            let mut prog = P { ops: &ops2, handles: &handles, results: &results };
            let out = Runner::new(SystemKind::LockillerTm)
                .threads(1)
                .config(SystemConfig::testing(2))
                .run(&mut prog);
            *final_mem.lock().unwrap() = Some(out.mem);
        }
        let (t, _) = handles.lock().unwrap().unwrap();
        let mem = final_mem.lock().unwrap().take().unwrap();
        t.check_invariants(&mem).map_err(TestCaseError::fail)?;
        // Oracle.
        let mut oracle = BTreeMap::new();
        let mut want = Vec::new();
        for op in &ops {
            match *op {
                MapOp::Insert(k, v) => {
                    let fresh = !oracle.contains_key(&k);
                    if fresh {
                        oracle.insert(k, v);
                    }
                    want.push(Some(fresh as u64));
                }
                MapOp::Remove(k) => want.push(oracle.remove(&k)),
                MapOp::Find(k) => want.push(oracle.get(&k).copied()),
                MapOp::Update(k, v) => {
                    let hit = oracle.contains_key(&k);
                    if hit {
                        oracle.insert(k, v);
                    }
                    want.push(Some(hit as u64));
                }
            }
        }
        prop_assert_eq!(results.into_inner().unwrap(), want);
        let oracle_v: Vec<(u64, u64)> = oracle.into_iter().collect();
        prop_assert_eq!(t.snapshot(&mem), oracle_v);
    }

    #[test]
    fn queue_matches_vecdeque(ops in prop::collection::vec(any::<Option<u16>>(), 1..100)) {
        let handles: Mutex<Option<(Queue, TmAlloc)>> = Mutex::new(None);
        let results: Mutex<Vec<Option<u64>>> = Mutex::new(Vec::new());
        let ops2 = ops.clone();
        run_tx(
            |s| {
                let alloc = TmAlloc::setup(s, 1, 1 << 16);
                let q = Queue::setup(s);
                *handles.lock().unwrap() = Some((q, alloc));
            },
            |tx| {
                let (q, alloc) = handles.lock().unwrap().unwrap();
                let mut out = Vec::new();
                for op in &ops2 {
                    match op {
                        Some(v) => {
                            q.push(tx, &alloc, *v as u64)?;
                        }
                        None => out.push(q.pop(tx)?),
                    }
                }
                *results.lock().unwrap() = out;
                Ok(())
            },
        );
        let mut oracle: VecDeque<u64> = VecDeque::new();
        let mut want = Vec::new();
        for op in &ops {
            match op {
                Some(v) => oracle.push_back(*v as u64),
                None => want.push(oracle.pop_front()),
            }
        }
        prop_assert_eq!(results.into_inner().unwrap(), want);
    }

    #[test]
    fn heap_pops_sorted(values in prop::collection::vec(any::<u32>(), 1..80)) {
        let handles: Mutex<Option<Heap>> = Mutex::new(None);
        let results: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        let vals = values.clone();
        run_tx(
            |s| {
                *handles.lock().unwrap() = Some(Heap::setup(s, 128));
            },
            |tx| {
                let h = handles.lock().unwrap().unwrap();
                for &v in &vals {
                    h.push(tx, v as u64)?;
                }
                let mut out = Vec::new();
                while let Some(v) = h.pop(tx)? {
                    out.push(v);
                }
                *results.lock().unwrap() = out;
                Ok(())
            },
        );
        let mut want: Vec<u64> = values.iter().map(|&v| v as u64).collect();
        want.sort_unstable_by(|a, b| b.cmp(a));
        prop_assert_eq!(results.into_inner().unwrap(), want);
    }

    #[test]
    fn list_is_a_sorted_set(keys in prop::collection::vec(0u64..64, 1..60)) {
        let handles: Mutex<Option<(List, TmAlloc)>> = Mutex::new(None);
        let results: Mutex<Vec<(u64, u64)>> = Mutex::new(Vec::new());
        let keys2 = keys.clone();
        run_tx(
            |s| {
                let alloc = TmAlloc::setup(s, 1, 1 << 16);
                let l = List::setup(s);
                *handles.lock().unwrap() = Some((l, alloc));
            },
            |tx| {
                let (l, alloc) = handles.lock().unwrap().unwrap();
                for &k in &keys2 {
                    l.insert(tx, &alloc, k, k * 2)?;
                }
                *results.lock().unwrap() = l.to_vec(tx)?;
                Ok(())
            },
        );
        let mut want: Vec<u64> = keys.clone();
        want.sort_unstable();
        want.dedup();
        let got = results.into_inner().unwrap();
        prop_assert_eq!(got.iter().map(|(k, _)| *k).collect::<Vec<_>>(), want);
        prop_assert!(got.iter().all(|(k, v)| *v == k * 2));
    }
}
