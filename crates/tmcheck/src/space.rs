//! Whole-space properties for the `tmverify` schedule explorer.
//!
//! The per-trace checkers in [`crate::invariants`] and [`crate::dsg`]
//! judge one execution; exhaustive exploration adds two properties that
//! only make sense quantified over *every* reachable schedule:
//!
//! - **deadlock-freedom** — no schedule drains the event queue while
//!   guest threads are still alive (checked with the wake-up safety net
//!   disabled, since the timeout would otherwise paper over a lost
//!   wake-up);
//! - **TL/STL grant exclusivity** — in no schedule does the HLA arbiter
//!   hand out two concurrent lock-transaction grants.
//!
//! [`SpaceReport`] aggregates the per-schedule verdicts into a summary
//! the explorer renders and serializes.

use crate::{CheckKind, Violation};
use lockiller::trace::{TraceEvent, TraceKind};
use sim_core::types::CoreId;

/// Build the violation reported when a schedule deadlocks
/// ([`lockiller::RunEnd::Deadlock`]).
pub fn deadlock_violation(stuck: &[usize]) -> Violation {
    Violation {
        check: CheckKind::Deadlock,
        message: format!(
            "event queue drained with cores {stuck:?} still alive \
             (waiting for events that can never arrive)"
        ),
    }
}

/// Check that no two cores simultaneously hold an HLA arbiter grant.
///
/// `HlBegin` (a TL lock transaction starting) and `SwitchGranted` (an
/// STL switch succeeding) both mean the arbiter granted this core the
/// lock; `HlEnd` releases it. Unlike the broader lock-occupancy check
/// this ignores fallback critical sections (they serialize on the guest
/// spin lock, not the arbiter), so a violation here is unambiguously an
/// arbiter exclusivity bug.
pub fn check_grant_exclusivity(events: &[TraceEvent]) -> Option<Violation> {
    let mut holder: Option<(CoreId, u64)> = None;
    for e in events {
        match e.kind {
            TraceKind::HlBegin | TraceKind::SwitchGranted => {
                if let Some((h, at)) = holder {
                    if h != e.core {
                        return Some(Violation {
                            check: CheckKind::GrantExclusivity,
                            message: format!(
                                "arbiter granted core {} at cycle {} while core {h}'s \
                                 grant from cycle {at} is outstanding",
                                e.core, e.cycle
                            ),
                        });
                    }
                } else {
                    holder = Some((e.core, e.cycle));
                }
            }
            TraceKind::HlEnd => {
                if matches!(holder, Some((h, _)) if h == e.core) {
                    holder = None;
                }
            }
            _ => {}
        }
    }
    None
}

/// Aggregate verdict over an explored schedule space.
#[derive(Clone, Debug, Default)]
pub struct SpaceReport {
    /// Schedules actually executed (after pruning).
    pub schedules: u64,
    /// Schedules with at least one violation.
    pub violating: u64,
    /// Violation tallies per checker, insertion-ordered.
    pub per_kind: Vec<(CheckKind, u64)>,
    /// First violation found, with the index of its schedule (in
    /// exploration order — deterministic for a deterministic explorer).
    pub first: Option<(u64, Violation)>,
}

impl SpaceReport {
    /// Fold one schedule's violations into the summary.
    pub fn record(&mut self, schedule: u64, violations: &[Violation]) {
        self.schedules = self.schedules.max(schedule + 1);
        if violations.is_empty() {
            return;
        }
        self.violating += 1;
        for v in violations {
            match self.per_kind.iter_mut().find(|(k, _)| *k == v.check) {
                Some((_, n)) => *n += 1,
                None => self.per_kind.push((v.check, 1)),
            }
        }
        if self.first.is_none() {
            self.first = Some((schedule, violations[0].clone()));
        }
    }

    /// Note a clean schedule (keeps the schedule count in step when the
    /// caller does not call [`SpaceReport::record`] for clean runs).
    pub fn record_clean(&mut self, schedule: u64) {
        self.schedules = self.schedules.max(schedule + 1);
    }

    pub fn is_clean(&self) -> bool {
        self.violating == 0
    }

    /// One-paragraph human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = format!("{} schedule(s) explored: ", self.schedules);
        if self.is_clean() {
            out.push_str("all clean\n");
        } else {
            out.push_str(&format!("{} violating\n", self.violating));
            for (k, n) in &self.per_kind {
                out.push_str(&format!("  {}: {n}\n", k.name()));
            }
            if let Some((s, v)) = &self.first {
                out.push_str(&format!("  first: schedule {s}: {v}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, core: CoreId, kind: TraceKind) -> TraceEvent {
        TraceEvent { cycle, core, kind }
    }

    #[test]
    fn double_grant_flagged() {
        let events = vec![
            ev(0, 0, TraceKind::HlBegin),
            ev(1, 1, TraceKind::SwitchGranted),
            ev(2, 0, TraceKind::HlEnd),
            ev(3, 1, TraceKind::HlEnd),
        ];
        let v = check_grant_exclusivity(&events).expect("overlap must be flagged");
        assert_eq!(v.check, CheckKind::GrantExclusivity);
    }

    #[test]
    fn serialized_grants_clean() {
        let events = vec![
            ev(0, 0, TraceKind::HlBegin),
            ev(1, 0, TraceKind::HlEnd),
            ev(2, 1, TraceKind::SwitchGranted),
            ev(3, 1, TraceKind::HlEnd),
            // Fallback sections never involve the arbiter.
            ev(4, 0, TraceKind::Fallback),
            ev(5, 1, TraceKind::HlBegin),
            ev(6, 1, TraceKind::HlEnd),
            ev(7, 0, TraceKind::FallbackEnd),
        ];
        assert!(check_grant_exclusivity(&events).is_none());
    }

    #[test]
    fn space_report_aggregates() {
        let mut r = SpaceReport::default();
        r.record_clean(0);
        r.record(1, &[deadlock_violation(&[0, 1])]);
        r.record(
            2,
            &[
                deadlock_violation(&[1]),
                Violation {
                    check: CheckKind::GrantExclusivity,
                    message: "x".into(),
                },
            ],
        );
        assert_eq!(r.schedules, 3);
        assert_eq!(r.violating, 2);
        assert!(!r.is_clean());
        assert_eq!(
            r.per_kind,
            vec![(CheckKind::Deadlock, 2), (CheckKind::GrantExclusivity, 1)]
        );
        let (s, v) = r.first.as_ref().unwrap();
        assert_eq!(*s, 1);
        assert_eq!(v.check, CheckKind::Deadlock);
        assert!(r.render().contains("2 violating"));
    }
}
