//! Checked-mode execution harness: run any [`Program`] on any system with
//! `CheckCfg` enabled, then feed the resulting trace through every
//! checker and fold in the live SWMR result and the program's own output
//! validation.

use crate::{check_trace, CheckKind, CheckOpts, Report, Violation};
use lockiller::program::Program;
use lockiller::runner::Runner;
use lockiller::system::SystemKind;
use sim_core::config::{CheckCfg, RejectAction, SystemConfig};
use sim_core::stats::RunStats;

/// Everything a checked run produces.
pub struct CheckedRun {
    pub stats: RunStats,
    pub report: Report,
    /// The program's own memory-image validation (the serializability
    /// oracle the integration tests use), run here explicitly so checked
    /// mode reports it alongside trace violations instead of panicking.
    pub validation: Result<(), String>,
}

impl CheckedRun {
    /// Clean trace *and* valid output.
    pub fn is_clean(&self) -> bool {
        self.report.is_clean() && self.validation.is_ok()
    }
}

/// Run `prog` on `kind` with checking enabled and analyze the trace.
///
/// `cfg.check.enabled` is forced on; any fault-injection knobs already
/// set on `cfg.check.fault` are preserved (that is how the mutation
/// tests prove each checker actually fires).
pub fn run_checked<P: Program>(
    kind: SystemKind,
    threads: usize,
    mut cfg: SystemConfig,
    seed: u64,
    prog: &mut P,
) -> CheckedRun {
    cfg.check.enabled = true;
    let runner = Runner::new(kind).threads(threads).seed(seed).config(cfg);
    let mut out = runner.tracing().no_validate().run(prog);
    let trace = out.take_trace_events();
    let (stats, mem) = (out.stats, out.mem);
    let opts = CheckOpts {
        wait_wakeup: kind.policy().reject_action == RejectAction::WaitWakeup,
    };
    let mut report = check_trace(&trace, opts);
    if let Some(msg) = &stats.swmr_violation {
        report.violations.push(Violation {
            check: CheckKind::Swmr,
            message: msg.clone(),
        });
    }
    let validation = prog.validate(&mem);
    CheckedRun {
        stats,
        report,
        validation,
    }
}

/// Convenience: a testing-scale config with checking on.
pub fn checked_config(threads: usize) -> SystemConfig {
    let mut cfg = SystemConfig::testing(threads.max(2));
    cfg.check = CheckCfg::on();
    cfg
}
