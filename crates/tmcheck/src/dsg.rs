//! Serializability checking via a direct-serialization graph (DSG).
//!
//! Nodes are committed atomic sections (HTM transactions, TL/STL lock
//! transactions, fallback critical sections) plus one singleton node per
//! non-transactional access. Edges are the classic dependencies, ordered
//! by **trace-vector index** rather than by cycle: the engine records an
//! access event at the instant its value resolves against flat memory or
//! the write buffer, and records `Commit`/`SwitchGranted` at the instant
//! the write buffer drains, so vector order *is* value-visibility order
//! and same-cycle ties resolve exactly as the engine resolved them.
//!
//! - `wr` (read-from): T read the version some other section's write made
//!   visible before the read → writer precedes T.
//! - `rw` (anti-dependency): T's read was overwritten by a later-visible
//!   write → T precedes that writer.
//! - `ww`: writes to a line precede each other in visibility order.
//!
//! Reads that follow the reader's own earlier write to the same line are
//! excluded (they see the private buffer, not a visible version). A cycle
//! in this graph means no serial order of the committed sections explains
//! the run; the witness lists the sections, cores, and lines involved.

use lockiller::trace::{TraceEvent, TraceKind};
use sim_core::fxhash::FxHashMap;
use sim_core::types::{CoreId, LineAddr};

/// Result of the serializability check.
#[derive(Clone, Debug, Default)]
pub struct DsgReport {
    /// Committed multi-access atomic sections (excludes singletons).
    pub committed_txns: usize,
    pub cycle: Option<CycleWitness>,
}

/// A minimal cycle found in the DSG: the participating sections in cycle
/// order, and for each hop the line and dependency kind that created it.
#[derive(Clone, Debug)]
pub struct CycleWitness {
    pub nodes: Vec<NodeInfo>,
    pub edges: Vec<EdgeInfo>,
}

#[derive(Clone, Copy, Debug)]
pub struct NodeInfo {
    /// Engine-assigned section id (0 for a non-transactional singleton).
    pub txn: u64,
    pub core: CoreId,
}

#[derive(Clone, Copy, Debug)]
pub struct EdgeInfo {
    pub from: NodeInfo,
    pub to: NodeInfo,
    pub line: LineAddr,
    /// "wr", "rw", or "ww".
    pub dep: &'static str,
}

impl CycleWitness {
    /// One-line description naming every section, core, and line.
    pub fn describe(&self) -> String {
        let hops: Vec<String> = self
            .edges
            .iter()
            .map(|e| {
                format!(
                    "txn{}@c{} -{}:{:?}-> txn{}@c{}",
                    e.from.txn, e.from.core, e.dep, e.line, e.to.txn, e.to.core
                )
            })
            .collect();
        format!(
            "DSG cycle of {} sections: {}",
            self.nodes.len(),
            hops.join(", ")
        )
    }
}

/// A committed section's accesses, in trace order.
struct Node {
    txn: u64,
    core: CoreId,
    /// (line, trace index) per read.
    reads: Vec<(LineAddr, usize)>,
    /// (line, trace index, visibility index) per write.
    writes: Vec<(LineAddr, usize, usize)>,
}

/// An atomic section still being replayed.
struct Build {
    core: CoreId,
    reads: Vec<(LineAddr, usize)>,
    /// (line, trace index, buffered) — visibility resolved on commit.
    writes: Vec<(LineAddr, usize, bool)>,
    /// `SwitchGranted` trace index: buffered writes became visible here.
    switch_idx: Option<usize>,
}

/// Build the DSG for `events` and search it for a cycle.
pub fn check_serializability(events: &[TraceEvent]) -> DsgReport {
    let mut nodes: Vec<Node> = Vec::new();
    let mut committed_txns = 0usize;

    {
        let mut building: FxHashMap<u64, Build> = FxHashMap::default();
        // The id of the section currently accumulating on each core, so
        // control events (which carry no id) can resolve it.
        let mut current: FxHashMap<CoreId, u64> = FxHashMap::default();
        for (i, e) in events.iter().enumerate() {
            match e.kind {
                TraceKind::Read { line, txn, .. } => {
                    if txn == 0 {
                        nodes.push(Node {
                            txn: 0,
                            core: e.core,
                            reads: vec![(line, i)],
                            writes: Vec::new(),
                        });
                    } else {
                        current.insert(e.core, txn);
                        building
                            .entry(txn)
                            .or_insert_with(|| Build {
                                core: e.core,
                                reads: Vec::new(),
                                writes: Vec::new(),
                                switch_idx: None,
                            })
                            .reads
                            .push((line, i));
                    }
                }
                TraceKind::Write {
                    line,
                    txn,
                    buffered,
                } => {
                    if txn == 0 {
                        nodes.push(Node {
                            txn: 0,
                            core: e.core,
                            reads: Vec::new(),
                            writes: vec![(line, i, i)],
                        });
                    } else {
                        current.insert(e.core, txn);
                        building
                            .entry(txn)
                            .or_insert_with(|| Build {
                                core: e.core,
                                reads: Vec::new(),
                                writes: Vec::new(),
                                switch_idx: None,
                            })
                            .writes
                            .push((line, i, buffered));
                    }
                }
                TraceKind::SwitchGranted => {
                    if let Some(id) = current.get(&e.core) {
                        if let Some(b) = building.get_mut(id) {
                            b.switch_idx = Some(i);
                        }
                    }
                }
                TraceKind::Commit | TraceKind::HlEnd | TraceKind::FallbackEnd => {
                    if let Some(id) = current.remove(&e.core) {
                        if let Some(b) = building.remove(&id) {
                            committed_txns += 1;
                            let switch = b.switch_idx;
                            nodes.push(Node {
                                txn: id,
                                core: b.core,
                                reads: b.reads,
                                writes: b
                                    .writes
                                    .into_iter()
                                    .map(|(line, idx, buffered)| {
                                        // Buffered writes drain at the
                                        // switch (STL) or at this commit;
                                        // immediate writes were visible
                                        // as they happened.
                                        let vis = if buffered { switch.unwrap_or(i) } else { idx };
                                        (line, idx, vis)
                                    })
                                    .collect(),
                            });
                        }
                    }
                }
                TraceKind::Abort(_) => {
                    // The attempt's accesses never became a committed
                    // version: drop them.
                    if let Some(id) = current.remove(&e.core) {
                        building.remove(&id);
                    }
                }
                _ => {}
            }
        }
        // Sections still open at end-of-trace never committed: drop.
    }

    let cycle = find_cycle(&nodes);
    DsgReport {
        committed_txns,
        cycle,
    }
}

/// Dependency edges, deduplicated; first (line, dep) witness kept.
type EdgeMap = FxHashMap<(usize, usize), (LineAddr, &'static str)>;

const WHITE: u8 = 0;
const GRAY: u8 = 1;
const BLACK: u8 = 2;

fn find_cycle(nodes: &[Node]) -> Option<CycleWitness> {
    // Per-line access indices into `nodes`.
    let mut writes_by_line: FxHashMap<LineAddr, Vec<(usize, usize)>> = FxHashMap::default();
    let mut reads_by_line: FxHashMap<LineAddr, Vec<(usize, usize)>> = FxHashMap::default();
    for (n, node) in nodes.iter().enumerate() {
        for &(line, _idx, vis) in &node.writes {
            writes_by_line.entry(line).or_default().push((vis, n));
        }
        for &(line, idx) in &node.reads {
            // Own-write-first reads see the private buffer, not a
            // committed version: no inter-section dependency.
            let own_earlier = node
                .writes
                .iter()
                .any(|&(l, widx, _)| l == line && widx < idx);
            if !own_earlier {
                reads_by_line.entry(line).or_default().push((idx, n));
            }
        }
    }

    let mut edges: EdgeMap = EdgeMap::default();
    let mut add = |from: usize, to: usize, line: LineAddr, dep: &'static str| {
        if from != to {
            edges.entry((from, to)).or_insert((line, dep));
        }
    };

    for (line, ws) in &mut writes_by_line {
        ws.sort_unstable();
        // ww: visibility order chains the writers.
        for pair in ws.windows(2) {
            add(pair[0].1, pair[1].1, *line, "ww");
        }
        if let Some(rs) = reads_by_line.get(line) {
            for &(ridx, rn) in rs {
                // wr: the last write visible before the read.
                let before = ws.partition_point(|&(vis, _)| vis < ridx);
                if let Some(&(_, wn)) = ws[..before].iter().rev().find(|&&(_, wn)| wn != rn) {
                    add(wn, rn, *line, "wr");
                }
                // rw: the first later-visible write by another section
                // overwrote what the read saw — unless the reader's own
                // write comes first, in which case the ww chain carries
                // the ordering.
                if let Some(&(_, wn)) = ws[before..].first() {
                    if wn != rn {
                        add(rn, wn, *line, "rw");
                    }
                }
            }
        }
    }

    // Iterative DFS with a path stack: the first back edge closes the
    // witness cycle.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for &(from, to) in edges.keys() {
        adj[from].push(to);
    }
    for a in &mut adj {
        a.sort_unstable();
    }

    let mut color = vec![WHITE; nodes.len()];
    for start in 0..nodes.len() {
        if color[start] != WHITE {
            continue;
        }
        // (node, next child position)
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = GRAY;
        while let Some(&mut (n, ref mut next)) = stack.last_mut() {
            if *next < adj[n].len() {
                let m = adj[n][*next];
                *next += 1;
                match color[m] {
                    WHITE => {
                        color[m] = GRAY;
                        stack.push((m, 0));
                    }
                    GRAY => {
                        // Cycle: the stack suffix from m back to n.
                        let pos = stack.iter().position(|&(x, _)| x == m).unwrap();
                        let cyc: Vec<usize> = stack[pos..].iter().map(|&(x, _)| x).collect();
                        return Some(witness(nodes, &edges, &cyc));
                    }
                    _ => {}
                }
            } else {
                color[n] = BLACK;
                stack.pop();
            }
        }
    }
    None
}

fn witness(nodes: &[Node], edges: &EdgeMap, cyc: &[usize]) -> CycleWitness {
    let info = |n: usize| NodeInfo {
        txn: nodes[n].txn,
        core: nodes[n].core,
    };
    let mut out = CycleWitness {
        nodes: cyc.iter().map(|&n| info(n)).collect(),
        edges: Vec::new(),
    };
    for k in 0..cyc.len() {
        let from = cyc[k];
        let to = cyc[(k + 1) % cyc.len()];
        let (line, dep) = edges[&(from, to)];
        out.edges.push(EdgeInfo {
            from: info(from),
            to: info(to),
            line,
            dep,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockiller::trace::TraceEvent;

    fn rd(cycle: u64, core: CoreId, line: u64, txn: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            core,
            kind: TraceKind::Read {
                line: LineAddr(line),
                txn,
                prio: 0,
            },
        }
    }

    fn wr(cycle: u64, core: CoreId, line: u64, txn: u64, buffered: bool) -> TraceEvent {
        TraceEvent {
            cycle,
            core,
            kind: TraceKind::Write {
                line: LineAddr(line),
                txn,
                buffered,
            },
        }
    }

    fn commit(cycle: u64, core: CoreId) -> TraceEvent {
        TraceEvent {
            cycle,
            core,
            kind: TraceKind::Commit,
        }
    }

    #[test]
    fn serial_history_is_clean() {
        // T1 fully commits before T2 starts: no cycle possible.
        let events = vec![
            rd(0, 0, 1, 1),
            wr(1, 0, 1, 1, true),
            commit(2, 0),
            rd(3, 1, 1, 2),
            wr(4, 1, 1, 2, true),
            commit(5, 1),
        ];
        let r = check_serializability(&events);
        assert_eq!(r.committed_txns, 2);
        assert!(r.cycle.is_none());
    }

    #[test]
    fn lost_update_is_a_cycle() {
        // Classic lost update: both transactions read the line before
        // either commit, then both commit a buffered write to it.
        let events = vec![
            rd(0, 0, 1, 1),
            rd(0, 1, 1, 2),
            wr(1, 0, 1, 1, true),
            wr(1, 1, 1, 2, true),
            commit(2, 0),
            commit(2, 1),
        ];
        let r = check_serializability(&events);
        assert_eq!(r.committed_txns, 2);
        let w = r.cycle.expect("lost update must produce a DSG cycle");
        assert!(w.nodes.len() >= 2);
        let ids: Vec<u64> = w.nodes.iter().map(|n| n.txn).collect();
        assert!(
            ids.contains(&1) && ids.contains(&2),
            "witness: {}",
            w.describe()
        );
    }

    #[test]
    fn aborted_attempts_do_not_participate() {
        // Same interleaving as the lost update, but one side aborts.
        let events = vec![
            rd(0, 0, 1, 1),
            rd(0, 1, 1, 2),
            wr(1, 0, 1, 1, true),
            wr(1, 1, 1, 2, true),
            commit(2, 0),
            TraceEvent {
                cycle: 2,
                core: 1,
                kind: TraceKind::Abort(sim_core::stats::AbortCause::Mc),
            },
        ];
        let r = check_serializability(&events);
        assert_eq!(r.committed_txns, 1);
        assert!(r.cycle.is_none());
    }

    #[test]
    fn non_repeatable_read_is_a_cycle() {
        // T1 reads the line, T2 commits a write to it, T1 reads it again
        // (sees the new version) and commits: T1 both precedes and
        // follows T2.
        let events = vec![
            rd(0, 0, 1, 1),
            rd(1, 1, 1, 2),
            wr(2, 1, 1, 2, true),
            commit(3, 1),
            rd(4, 0, 1, 1),
            commit(5, 0),
        ];
        let r = check_serializability(&events);
        let w = r.cycle.expect("non-repeatable read must be flagged");
        assert!(w.describe().contains("txn1"));
    }

    #[test]
    fn read_own_write_is_not_a_dependency() {
        // T1 writes then reads its own buffer while T2 commits a write
        // in between: T1's second read must not read-from T2.
        let events = vec![
            wr(0, 0, 1, 1, true),
            rd(1, 1, 1, 2),
            wr(2, 1, 1, 2, true),
            commit(3, 1),
            rd(4, 0, 1, 1), // own buffer, not T2's version
            commit(5, 0),
        ];
        let r = check_serializability(&events);
        assert!(r.cycle.is_none(), "{:?}", r.cycle.map(|c| c.describe()));
    }

    #[test]
    fn stl_switch_makes_buffered_writes_visible_early() {
        // T1 writes buffered, switches to STL (buffer drains), then a
        // non-tx read observes the value before T1's hlend: legal, since
        // visibility moved to the switch point.
        let events = vec![
            wr(0, 0, 1, 1, true),
            TraceEvent {
                cycle: 1,
                core: 0,
                kind: TraceKind::SwitchGranted,
            },
            TraceEvent {
                cycle: 2,
                core: 1,
                kind: TraceKind::Read {
                    line: LineAddr(1),
                    txn: 0,
                    prio: 0,
                },
            },
            TraceEvent {
                cycle: 3,
                core: 0,
                kind: TraceKind::HlEnd,
            },
        ];
        let r = check_serializability(&events);
        assert_eq!(r.committed_txns, 1);
        assert!(r.cycle.is_none());
    }

    #[test]
    fn fallback_sections_are_atomic_nodes() {
        // Two fallback sections interleaved at the access level would be
        // a violation; properly serialized ones are clean.
        let fb = |cycle, core| TraceEvent {
            cycle,
            core,
            kind: TraceKind::Fallback,
        };
        let fe = |cycle, core| TraceEvent {
            cycle,
            core,
            kind: TraceKind::FallbackEnd,
        };
        let clean = vec![
            fb(0, 0),
            rd(1, 0, 1, 1),
            wr(2, 0, 1, 1, false),
            fe(3, 0),
            fb(4, 1),
            rd(5, 1, 1, 2),
            wr(6, 1, 1, 2, false),
            fe(7, 1),
        ];
        assert!(check_serializability(&clean).cycle.is_none());

        // Interleaved immediate writes: both read 0, both store — lost
        // update again, now with unbuffered visibility.
        let broken = vec![
            fb(0, 0),
            fb(0, 1),
            rd(1, 0, 1, 1),
            rd(1, 1, 1, 2),
            wr(2, 0, 1, 1, false),
            wr(2, 1, 1, 2, false),
            fe(3, 0),
            fe(3, 1),
        ];
        assert!(check_serializability(&broken).cycle.is_some());
    }
}
