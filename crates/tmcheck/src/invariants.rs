//! Protocol-invariant checkers replaying the checked-mode event trace:
//! lock-section occupancy, per-attempt priority monotonicity, and the
//! NACK/wake-up liveness contract of the recovery mechanism.
//!
//! (The SWMR invariant is checked live against cache state inside the
//! engine — see `MemSystem::check_swmr` and `RunStats::swmr_violation` —
//! because it needs the actual MESI state, not the access stream; the
//! harness folds its result into the same [`crate::Report`].)

use crate::{CheckKind, CheckOpts, Violation};
use lockiller::trace::{TraceEvent, TraceKind};
use sim_core::fxhash::{FxHashMap, FxHashSet};
use sim_core::types::CoreId;

/// Replay `events` and collect invariant violations.
pub fn check_invariants(events: &[TraceEvent], opts: CheckOpts) -> Vec<Violation> {
    let mut out = Vec::new();
    check_lock_occupancy(events, &mut out);
    check_priority_monotone(events, &mut out);
    if opts.wait_wakeup {
        check_liveness(events, &mut out);
        check_nack_wake_pairing(events, &mut out);
    }
    out
}

/// At most one lock transaction — TL (`HlBegin`), STL (`SwitchGranted`),
/// or fallback critical section (`Fallback`) — may be active at a time:
/// they all serialize on the single global lock / HLA arbiter.
fn check_lock_occupancy(events: &[TraceEvent], out: &mut Vec<Violation>) {
    let mut holder: Option<(CoreId, u64)> = None;
    for e in events {
        match e.kind {
            TraceKind::HlBegin | TraceKind::Fallback | TraceKind::SwitchGranted => {
                if let Some((h, at)) = holder {
                    if h != e.core {
                        out.push(Violation {
                            check: CheckKind::LockOccupancy,
                            message: format!(
                                "core {} entered a lock section at cycle {} while core {h} \
                                 has held one since cycle {at}",
                                e.core, e.cycle
                            ),
                        });
                        return; // one witness is enough
                    }
                } else {
                    holder = Some((e.core, e.cycle));
                }
            }
            TraceKind::HlEnd | TraceKind::FallbackEnd => match holder {
                Some((h, _)) if h == e.core => holder = None,
                Some((h, _)) => {
                    out.push(Violation {
                        check: CheckKind::LockOccupancy,
                        message: format!(
                            "core {} ended a lock section at cycle {} but core {h} \
                                 holds the lock",
                            e.core, e.cycle
                        ),
                    });
                    return;
                }
                None => {
                    out.push(Violation {
                        check: CheckKind::LockOccupancy,
                        message: format!(
                            "core {} ended a lock section at cycle {} with none active",
                            e.core, e.cycle
                        ),
                    });
                    return;
                }
            },
            _ => {}
        }
    }
}

/// Within one transaction attempt the recovery priority must never
/// decrease: insts- and progression-based priorities only accumulate, and
/// an STL switch jumps to the (higher) lock priority. A decrease means
/// arbitration state leaked between attempts.
fn check_priority_monotone(events: &[TraceEvent], out: &mut Vec<Violation>) {
    let mut last: FxHashMap<u64, u64> = FxHashMap::default();
    for e in events {
        if let TraceKind::Read { txn, prio, .. } = e.kind {
            if txn == 0 {
                continue;
            }
            let prev = last.entry(txn).or_insert(prio);
            if prio < *prev {
                out.push(Violation {
                    check: CheckKind::Priority,
                    message: format!(
                        "core {} priority dropped {} -> {prio} within attempt txn{txn} \
                         at cycle {}",
                        e.core, *prev, e.cycle
                    ),
                });
                return;
            }
            *prev = prio;
        }
    }
}

/// Under `RejectAction::WaitWakeup`, every rejected request parks until a
/// wake-up. A `WakeTimeout` event means the safety net fired (a wake-up
/// was lost); an access or commit on a core that is parked without an
/// intervening `Woken`/`Abort` means the engine forgot the park; a trace
/// ending with a core still parked means it hung.
fn check_liveness(events: &[TraceEvent], out: &mut Vec<Violation>) {
    let mut waiting: FxHashMap<CoreId, u64> = FxHashMap::default();
    for e in events {
        match e.kind {
            TraceKind::Rejected { .. } => {
                waiting.insert(e.core, e.cycle);
            }
            TraceKind::Woken | TraceKind::Abort(_) => {
                waiting.remove(&e.core);
            }
            TraceKind::WakeTimeout => {
                out.push(Violation {
                    check: CheckKind::Liveness,
                    message: format!(
                        "core {} hit the wake-up safety-net timeout at cycle {} \
                         (rejected at cycle {:?})",
                        e.core,
                        e.cycle,
                        waiting.get(&e.core)
                    ),
                });
                return;
            }
            TraceKind::Read { .. } | TraceKind::Write { .. } | TraceKind::Commit => {
                if let Some(&since) = waiting.get(&e.core) {
                    out.push(Violation {
                        check: CheckKind::Liveness,
                        message: format!(
                            "core {} progressed at cycle {} while parked since cycle \
                             {since} with no wake-up",
                            e.core, e.cycle
                        ),
                    });
                    return;
                }
            }
            _ => {}
        }
    }
    if let Some((&core, &since)) = waiting.iter().min_by_key(|&(_, &c)| c) {
        out.push(Violation {
            check: CheckKind::Liveness,
            message: format!(
                "core {core} was rejected at cycle {since} and never woken before the \
                 run ended"
            ),
        });
    }
}

/// Every NACK a core sends must eventually be answered by a wake-up from
/// the same core to the same requester (the rejecter's wake-list drains
/// at its commit, abort, or hlend — dropping it starves the requester).
fn check_nack_wake_pairing(events: &[TraceEvent], out: &mut Vec<Violation>) {
    // Reverse scan: a pair is satisfied if a wake-up exists later.
    let mut wake_later: FxHashSet<(CoreId, CoreId)> = FxHashSet::default();
    for e in events.iter().rev() {
        match e.kind {
            TraceKind::WakeSent { to } => {
                wake_later.insert((e.core, to));
            }
            TraceKind::NackSent { to, line } if !wake_later.contains(&(e.core, to)) => {
                out.push(Violation {
                    check: CheckKind::Liveness,
                    message: format!(
                        "core {} NACKed core {to} for {line:?} at cycle {} but \
                             never sent it a wake-up",
                        e.core, e.cycle
                    ),
                });
                return;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::stats::AbortCause;
    use sim_core::types::LineAddr;

    fn ev(cycle: u64, core: CoreId, kind: TraceKind) -> TraceEvent {
        TraceEvent { cycle, core, kind }
    }

    #[test]
    fn overlapping_lock_sections_flagged() {
        let events = vec![
            ev(0, 0, TraceKind::HlBegin),
            ev(1, 1, TraceKind::HlBegin),
            ev(2, 0, TraceKind::HlEnd),
            ev(3, 1, TraceKind::HlEnd),
        ];
        let v = check_invariants(&events, CheckOpts::default());
        assert!(v.iter().any(|v| v.check == CheckKind::LockOccupancy));
    }

    #[test]
    fn serialized_lock_sections_clean() {
        let events = vec![
            ev(0, 0, TraceKind::Fallback),
            ev(1, 0, TraceKind::FallbackEnd),
            ev(2, 1, TraceKind::HlBegin),
            ev(3, 1, TraceKind::HlEnd),
            ev(4, 0, TraceKind::SwitchGranted),
            ev(5, 0, TraceKind::HlEnd),
        ];
        assert!(check_invariants(&events, CheckOpts::default()).is_empty());
    }

    #[test]
    fn priority_decrease_flagged() {
        let rd = |cycle, prio| {
            ev(
                cycle,
                0,
                TraceKind::Read {
                    line: LineAddr(1),
                    txn: 7,
                    prio,
                },
            )
        };
        let v = check_invariants(&[rd(0, 3), rd(1, 5), rd(2, 2)], CheckOpts::default());
        assert!(v.iter().any(|v| v.check == CheckKind::Priority));
        let v = check_invariants(&[rd(0, 3), rd(1, 3), rd(2, 9)], CheckOpts::default());
        assert!(v.is_empty());
    }

    #[test]
    fn lost_wakeup_flagged_only_under_wait_wakeup() {
        let events = vec![
            ev(
                0,
                1,
                TraceKind::NackSent {
                    to: 0,
                    line: LineAddr(1),
                },
            ),
            ev(1, 0, TraceKind::Rejected { by_sig: false }),
            ev(2, 0, TraceKind::WakeTimeout),
        ];
        let wait = CheckOpts { wait_wakeup: true };
        assert!(check_invariants(&events, wait)
            .iter()
            .any(|v| v.check == CheckKind::Liveness));
        assert!(check_invariants(&events, CheckOpts::default()).is_empty());
    }

    #[test]
    fn woken_and_aborted_parks_are_clean() {
        let events = vec![
            ev(
                0,
                1,
                TraceKind::NackSent {
                    to: 0,
                    line: LineAddr(1),
                },
            ),
            ev(1, 0, TraceKind::Rejected { by_sig: false }),
            ev(2, 1, TraceKind::WakeSent { to: 0 }),
            ev(3, 0, TraceKind::Woken),
            ev(4, 0, TraceKind::Rejected { by_sig: true }),
            ev(5, 0, TraceKind::Abort(AbortCause::Mc)),
        ];
        assert!(check_invariants(&events, CheckOpts { wait_wakeup: true }).is_empty());
    }

    #[test]
    fn never_woken_park_flagged_at_trace_end() {
        let events = vec![ev(1, 0, TraceKind::Rejected { by_sig: false })];
        let v = check_invariants(&events, CheckOpts { wait_wakeup: true });
        assert!(v
            .iter()
            .any(|v| v.check == CheckKind::Liveness && v.message.contains("never woken")));
    }

    #[test]
    fn unpaired_nack_flagged() {
        let events = vec![
            ev(
                0,
                1,
                TraceKind::NackSent {
                    to: 0,
                    line: LineAddr(4),
                },
            ),
            ev(1, 0, TraceKind::Rejected { by_sig: false }),
            ev(2, 0, TraceKind::Woken), // woken by someone else's wake
        ];
        let v = check_invariants(&events, CheckOpts { wait_wakeup: true });
        assert!(v
            .iter()
            .any(|v| v.check == CheckKind::Liveness && v.message.contains("NACKed")));
    }
}
