//! Checked-mode CLI: run STAMP workloads under the trace checkers and
//! report violations. Exit status is non-zero if any run is not clean,
//! so CI can gate on it.
//!
//! ```text
//! tmcheck [--workload NAME|all] [--system NAME|all] [--threads N]
//!         [--scale tiny|small|full] [--seed HEX] [-v]
//! ```
//!
//! Defaults: all workloads, the four-system ladder Baseline /
//! LockillerRWI / LockillerRWIL / LockillerTM, 4 threads, tiny scale.

use lockiller::system::SystemKind;
use sim_core::config::SystemConfig;
use stamp::{Scale, Workload, WorkloadKind};
use tmcheck::harness::{checked_config, run_checked};

/// The representative system ladder checked by default: no recovery,
/// recovery with wake-ups, +HTMLock, +switching (the paper's progression
/// from Table II).
const DEFAULT_SYSTEMS: [SystemKind; 4] = [
    SystemKind::Baseline,
    SystemKind::LockillerRwi,
    SystemKind::LockillerRwil,
    SystemKind::LockillerTm,
];

struct Args {
    workloads: Vec<WorkloadKind>,
    systems: Vec<SystemKind>,
    threads: usize,
    scale: Scale,
    seed: u64,
    verbose: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: tmcheck [--workload NAME|all] [--system NAME|all] [--threads N]\n\
         \x20              [--scale tiny|small|full] [--seed HEX] [-v]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        workloads: WorkloadKind::ALL.to_vec(),
        systems: DEFAULT_SYSTEMS.to_vec(),
        threads: 4,
        scale: Scale::Tiny,
        seed: 0xC0FFEE,
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--workload" | "-w" => {
                let v = val();
                if v != "all" {
                    let Some(k) = WorkloadKind::from_name(&v) else {
                        eprintln!("unknown workload {v:?}");
                        usage();
                    };
                    args.workloads = vec![k];
                }
            }
            "--system" | "-s" => {
                let v = val();
                if v == "all" {
                    args.systems = SystemKind::ALL.to_vec();
                } else {
                    let Some(k) = SystemKind::from_name(&v) else {
                        eprintln!("unknown system {v:?}");
                        usage();
                    };
                    args.systems = vec![k];
                }
            }
            "--threads" | "-t" => {
                args.threads = val().parse().unwrap_or_else(|_| usage());
            }
            "--scale" => {
                args.scale = match val().as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    _ => usage(),
                };
            }
            "--seed" => {
                let v = val();
                let v = v.trim_start_matches("0x");
                args.seed = u64::from_str_radix(v, 16).unwrap_or_else(|_| usage());
            }
            "-v" | "--verbose" => args.verbose = true,
            "-h" | "--help" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let cfg = match args.scale {
        Scale::Tiny | Scale::Small => checked_config(args.threads),
        Scale::Full => {
            let mut c = SystemConfig::table1();
            c.check = sim_core::config::CheckCfg::on();
            c
        }
    };

    let mut failures = 0usize;
    let mut runs = 0usize;
    for &wk in &args.workloads {
        for &sys in &args.systems {
            runs += 1;
            let mut prog = Workload::with_scale(wk, args.threads, args.scale);
            let run = run_checked(sys, args.threads, cfg.clone(), args.seed, &mut prog);
            let tag = format!("{:<10} {:<14}", wk.name(), sys.name());
            if run.is_clean() {
                println!(
                    "ok   {tag} {:>8} events {:>6} txns {:>6} commits",
                    run.report.events, run.report.committed_txns, run.stats.commits
                );
            } else {
                failures += 1;
                println!("FAIL {tag}");
                print!("{}", run.report.render());
                if let Err(e) = &run.validation {
                    println!("  [validation] {e}");
                }
            }
            if args.verbose {
                println!(
                    "     aborts={:?} rejects={} wakeups={} timeouts={}",
                    run.stats.aborts,
                    run.stats.rejects,
                    run.stats.wakeups,
                    run.stats.wakeup_timeouts
                );
            }
        }
    }
    println!("{runs} runs, {failures} failure(s)");
    if failures > 0 {
        std::process::exit(1);
    }
}
