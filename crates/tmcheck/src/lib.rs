//! Trace-driven verification of the simulated TM systems: a
//! direct-serialization-graph (DSG) serializability checker and a set of
//! protocol-invariant checkers, both replaying the engine's checked-mode
//! event trace (see `lockiller::trace`).
//!
//! The checkers are deliberately independent of the engine's own
//! bookkeeping: they reconstruct transaction atomicity, lock-section
//! occupancy, priority evolution, and NACK/wake-up liveness purely from
//! the recorded events, so a bug in the engine or the coherence protocol
//! shows up as a reported violation with a concrete witness rather than
//! as a silently wrong figure.

pub mod dsg;
pub mod harness;
pub mod invariants;
pub mod space;

use std::fmt;

/// Which checker flagged a violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CheckKind {
    /// The direct-serialization graph over committed transactions has a
    /// cycle: no serial order explains the observed reads and writes.
    Serializability,
    /// Single-writer/multiple-readers broken: two cores held conflicting
    /// coherence states for the same line.
    Swmr,
    /// Two lock transactions (TL/STL/fallback) were active at once.
    LockOccupancy,
    /// A core's recovery priority decreased within one transaction
    /// attempt (priorities must be monotone until the attempt ends).
    Priority,
    /// A rejected request was never woken (lost wake-up, safety-net
    /// timeout, or a NACK with no matching wake-up).
    Liveness,
    /// The event queue drained with guest threads still alive: some core
    /// waits forever for an event that can never arrive. Only reachable
    /// with the wake-up safety net disabled (the timeout would otherwise
    /// mask the hang); reported per schedule by the `tmverify` explorer.
    Deadlock,
    /// The HLA arbiter handed out two concurrent TL/STL grants: two
    /// cores were inside arbiter-granted lock transactions at once.
    GrantExclusivity,
}

impl CheckKind {
    pub fn name(self) -> &'static str {
        match self {
            CheckKind::Serializability => "serializability",
            CheckKind::Swmr => "swmr",
            CheckKind::LockOccupancy => "lock-occupancy",
            CheckKind::Priority => "priority",
            CheckKind::Liveness => "liveness",
            CheckKind::Deadlock => "deadlock",
            CheckKind::GrantExclusivity => "grant-exclusivity",
        }
    }
}

/// One detected violation, with a human-readable witness.
#[derive(Clone, Debug)]
pub struct Violation {
    pub check: CheckKind,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.check.name(), self.message)
    }
}

/// Options controlling which invariants apply to a given system.
#[derive(Clone, Copy, Debug, Default)]
pub struct CheckOpts {
    /// The system parks rejected requests until a wake-up
    /// (`RejectAction::WaitWakeup`); enables the liveness checkers.
    pub wait_wakeup: bool,
}

/// The combined result of all trace checkers for one run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Committed transactions found in the trace (atomic sections with at
    /// least one access; non-transactional accesses are not counted).
    pub committed_txns: usize,
    /// Total trace events analyzed.
    pub events: usize,
    pub violations: Vec<Violation>,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// True if some violation came from `check`.
    pub fn has(&self, check: CheckKind) -> bool {
        self.violations.iter().any(|v| v.check == check)
    }

    /// Multi-line human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} events, {} committed txns: ",
            self.events, self.committed_txns
        );
        if self.is_clean() {
            out.push_str("clean\n");
        } else {
            out.push_str(&format!("{} violation(s)\n", self.violations.len()));
            for v in &self.violations {
                out.push_str(&format!("  {v}\n"));
            }
        }
        out
    }
}

/// Run every trace checker over `events`.
pub fn check_trace(events: &[lockiller::trace::TraceEvent], opts: CheckOpts) -> Report {
    let mut report = Report {
        events: events.len(),
        ..Report::default()
    };
    let d = dsg::check_serializability(events);
    report.committed_txns = d.committed_txns;
    if let Some(w) = d.cycle {
        report.violations.push(Violation {
            check: CheckKind::Serializability,
            message: w.describe(),
        });
    }
    report
        .violations
        .extend(invariants::check_invariants(events, opts));
    report
}
