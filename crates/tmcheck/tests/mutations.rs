//! Checker-validation (mutation) tests: each fault-injection knob breaks
//! the protocol in a distinct way, and the corresponding checker must
//! report a violation with a concrete witness. This is the evidence that
//! the checkers actually detect what they claim to detect — a checker
//! that passes on correct runs AND on broken runs checks nothing.

use lockiller::flatmem::{FlatMem, SetupCtx};
use lockiller::guest::GuestCtx;
use lockiller::program::Program;
use lockiller::system::SystemKind;
use sim_core::types::Addr;
use tmcheck::harness::{checked_config, run_checked};
use tmcheck::CheckKind;

/// Shared counter incremented in critical sections: the canonical
/// conflict generator (load / compute / store forces a wide window).
struct Counter {
    per_thread: u64,
    threads: usize,
    addr: Addr,
}

impl Counter {
    fn new(per_thread: u64) -> Counter {
        Counter {
            per_thread,
            threads: 0,
            addr: Addr::NULL,
        }
    }
}

impl Program for Counter {
    fn name(&self) -> &str {
        "counter"
    }

    fn setup(&mut self, s: &mut SetupCtx, threads: usize) {
        self.threads = threads;
        self.addr = s.alloc(8);
    }

    fn run(&self, ctx: &mut GuestCtx) {
        let addr = self.addr;
        for _ in 0..self.per_thread {
            ctx.critical(|tx| {
                let v = tx.load(addr)?;
                tx.compute(30)?;
                tx.store(addr, v + 1)?;
                Ok(())
            });
            ctx.compute(10);
        }
    }

    fn validate(&self, mem: &FlatMem) -> Result<(), String> {
        let got = mem.read(self.addr);
        let want = self.per_thread * self.threads as u64;
        if got == want {
            Ok(())
        } else {
            Err(format!("counter {got} != {want}"))
        }
    }
}

/// Knob 1: the protocol ignores transactional conflict bits, so two
/// speculative read-modify-writes interleave and both commit — a lost
/// update the DSG checker must flag as a cycle.
#[test]
fn ignore_conflicts_breaks_serializability() {
    let mut cfg = checked_config(2);
    cfg.check.fault.ignore_conflicts = true;
    let mut prog = Counter::new(25);
    let run = run_checked(SystemKind::Baseline, 2, cfg, 1, &mut prog);
    assert!(
        run.report.has(CheckKind::Serializability),
        "conflict-blind protocol must produce a DSG cycle:\n{}",
        run.report.render()
    );
    // The witness names the sections involved.
    let v = run
        .report
        .violations
        .iter()
        .find(|v| v.check == CheckKind::Serializability)
        .unwrap();
    assert!(v.message.contains("DSG cycle"), "witness: {}", v.message);
    // And the lost update shows up in the output too.
    assert!(
        run.validation.is_err(),
        "lost updates must corrupt the counter"
    );
}

/// Knob 2: the arbitration loser acknowledges the probe as if it held
/// nothing but keeps its modified line, so the directory hands out a
/// second exclusive copy — the live SWMR checker must catch the dual
/// ownership.
#[test]
fn drop_nack_breaks_swmr() {
    let mut cfg = checked_config(4);
    cfg.check.fault.drop_nack = true;
    let mut prog = Counter::new(25);
    let run = run_checked(SystemKind::LockillerRwi, 4, cfg, 1, &mut prog);
    assert!(
        run.report.has(CheckKind::Swmr),
        "a swallowed NACK must leave two exclusive copies:\n{}",
        run.report.render()
    );
    let v = run
        .report
        .violations
        .iter()
        .find(|v| v.check == CheckKind::Swmr)
        .unwrap();
    assert!(v.message.contains("at cycle"), "witness: {}", v.message);
}

/// Knob 3: NACKs still flow but wake-ups are silently dropped, so parked
/// requesters starve — the liveness checker must flag the unpaired NACK.
/// With four contending threads the starvation is usually cut short by a
/// conflicting probe aborting the parked core, so the run completes; the
/// pairing check catches the drop regardless.
#[test]
fn drop_wakeups_breaks_nack_pairing() {
    let mut cfg = checked_config(4);
    cfg.check.fault.drop_wakeups = true;
    let mut prog = Counter::new(25);
    let run = run_checked(SystemKind::LockillerRwi, 4, cfg, 1, &mut prog);
    assert!(
        run.report.has(CheckKind::Liveness),
        "dropped wake-ups must leave unpaired NACKs:\n{}",
        run.report.render()
    );
    let v = run
        .report
        .violations
        .iter()
        .find(|v| v.check == CheckKind::Liveness)
        .unwrap();
    assert!(v.message.contains("NACKed"), "witness: {}", v.message);
}

/// Write-only transactions with a long in-transaction tail: thread 1's
/// first store lands while thread 0 (further along, higher priority)
/// holds the line speculatively written, so thread 1 is rejected holding
/// nothing another core would ever probe. With the wake-up dropped,
/// nothing releases it and it starves to the safety-net timeout.
struct Starver {
    addr: Addr,
}

impl Program for Starver {
    fn name(&self) -> &str {
        "starver"
    }

    fn setup(&mut self, s: &mut SetupCtx, _threads: usize) {
        self.addr = s.alloc(8);
    }

    fn run(&self, ctx: &mut GuestCtx) {
        let addr = self.addr;
        if ctx.tid == 0 {
            ctx.critical(|tx| {
                tx.store(addr, 1)?;
                tx.compute(600)
            });
        } else {
            // Arrive mid-window, when thread 0's write bit is set and its
            // instruction-based priority is far ahead.
            ctx.compute(300);
            ctx.critical(|tx| {
                tx.store(addr, 2)?;
                tx.compute(5)
            });
        }
    }
}

/// Knob 3, starvation shape: the parked requester holds nothing, so no
/// probe ever aborts it and the run only finishes because the safety-net
/// timeout fires — which the liveness checker reports.
#[test]
fn drop_wakeups_starves_to_timeout() {
    let mut cfg = checked_config(2);
    cfg.check.fault.drop_wakeups = true;
    let mut prog = Starver { addr: Addr::NULL };
    let run = run_checked(SystemKind::LockillerRwi, 2, cfg, 1, &mut prog);
    assert!(
        run.stats.wakeup_timeouts > 0,
        "the safety net should have fired"
    );
    assert!(
        run.report.has(CheckKind::Liveness),
        "the timeout must surface as a liveness violation:\n{}",
        run.report.render()
    );
    let timeout = run
        .report
        .violations
        .iter()
        .any(|v| v.check == CheckKind::Liveness && v.message.contains("safety-net"));
    assert!(timeout, "{}", run.report.render());
}

/// Sanity: the same workload with no fault injected is clean on every
/// knob's system — the mutations above fail because of the fault, not
/// because of the workload.
#[test]
fn no_fault_is_clean() {
    for kind in [SystemKind::Baseline, SystemKind::LockillerRwi] {
        let mut prog = Counter::new(25);
        let run = run_checked(kind, 4, checked_config(4), 1, &mut prog);
        assert!(
            run.is_clean(),
            "{} should be clean without faults:\n{}",
            kind.name(),
            run.report.render()
        );
    }
}
