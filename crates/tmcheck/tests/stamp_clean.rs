//! Checked-mode integration matrix: every STAMP workload, on the
//! four-system ladder (no recovery → recovery → +HTMLock → +switching),
//! must produce a serializable trace with every protocol invariant
//! intact, and a valid memory image. One test per system so the matrix
//! runs in parallel.

use lockiller::flatmem::{FlatMem, SetupCtx};
use lockiller::guest::GuestCtx;
use lockiller::program::Program;
use lockiller::system::SystemKind;
use sim_core::types::Addr;
use stamp::{Scale, Workload, WorkloadKind};
use tmcheck::harness::{checked_config, run_checked};

fn check_all_workloads(kind: SystemKind) {
    const THREADS: usize = 2;
    for wk in WorkloadKind::ALL {
        let mut prog = Workload::with_scale(wk, THREADS, Scale::Tiny);
        let run = run_checked(kind, THREADS, checked_config(THREADS), 0xC0FFEE, &mut prog);
        assert!(
            run.report.is_clean(),
            "{} on {}: {}",
            wk.name(),
            kind.name(),
            run.report.render()
        );
        assert!(
            run.validation.is_ok(),
            "{} on {}: {:?}",
            wk.name(),
            kind.name(),
            run.validation
        );
        assert!(
            run.report.committed_txns > 0,
            "{} traced no transactions",
            wk.name()
        );
    }
}

#[test]
fn stamp_clean_on_baseline() {
    check_all_workloads(SystemKind::Baseline);
}

#[test]
fn stamp_clean_on_lockiller_rwi() {
    check_all_workloads(SystemKind::LockillerRwi);
}

#[test]
fn stamp_clean_on_lockiller_rwil() {
    check_all_workloads(SystemKind::LockillerRwil);
}

#[test]
fn stamp_clean_on_lockiller_tm() {
    check_all_workloads(SystemKind::LockillerTm);
}

// ---------------- engine-behaviour scenarios under the checkers --------

/// Counter with a compute window inside the critical section — the
/// highest-contention shape the engine tests use.
struct Counter {
    per_thread: u64,
    threads: usize,
    addr: Addr,
}

impl Program for Counter {
    fn name(&self) -> &str {
        "counter"
    }

    fn setup(&mut self, s: &mut SetupCtx, threads: usize) {
        self.threads = threads;
        self.addr = s.alloc(8);
    }

    fn run(&self, ctx: &mut GuestCtx) {
        let addr = self.addr;
        for _ in 0..self.per_thread {
            ctx.critical(|tx| {
                let v = tx.load(addr)?;
                tx.compute(25)?;
                tx.store(addr, v + 1)?;
                Ok(())
            });
            ctx.compute(15);
        }
    }

    fn validate(&self, mem: &FlatMem) -> Result<(), String> {
        let got = mem.read(self.addr);
        let want = self.per_thread * self.threads as u64;
        if got == want {
            Ok(())
        } else {
            Err(format!("counter {got} != {want}"))
        }
    }
}

/// High contention on every Table-II system: all nine must stay clean
/// under the checkers (liveness applies only where wake-ups exist).
#[test]
fn contended_counter_clean_on_all_systems() {
    for kind in SystemKind::ALL {
        let mut prog = Counter {
            per_thread: 30,
            threads: 0,
            addr: Addr::NULL,
        };
        let run = run_checked(kind, 4, checked_config(4), 7, &mut prog);
        assert!(
            run.is_clean(),
            "counter on {}: {}",
            kind.name(),
            run.report.render()
        );
    }
}

/// With a zero retry budget every critical section takes the lock path:
/// the occupancy checker sees a pure lock-transaction trace.
#[test]
fn lock_only_execution_clean() {
    use lockiller::runner::Runner;
    use sim_core::config::RejectAction;
    for kind in [
        SystemKind::Cgl,
        SystemKind::Baseline,
        SystemKind::LockillerTm,
    ] {
        let mut cfg = checked_config(4);
        cfg.check.enabled = true;
        let mut prog = Counter {
            per_thread: 15,
            threads: 0,
            addr: Addr::NULL,
        };
        let runner = Runner::new(kind).threads(4).retries(0).config(cfg);
        let mut out = runner.tracing().no_validate().run(&mut prog);
        let trace = out.take_trace_events();
        let (stats, mem) = (out.stats, out.mem);
        let opts = tmcheck::CheckOpts {
            wait_wakeup: kind.policy().reject_action == RejectAction::WaitWakeup,
        };
        let report = tmcheck::check_trace(&trace, opts);
        assert!(report.is_clean(), "{}: {}", kind.name(), report.render());
        assert!(stats.swmr_violation.is_none());
        assert!(prog.validate(&mem).is_ok());
        assert!(report.committed_txns > 0);
    }
}
