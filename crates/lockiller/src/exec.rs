//! The guest execution seam: how the engine drives a simulated thread.
//!
//! A [`GuestExec`] is a *resumable* guest: the engine hands it the
//! response to its previous operation and gets the next operation back,
//! synchronously, on the engine's own thread. The poll-style contract
//! replaces the original mpsc rendezvous (one OS context switch per
//! simulated guest step) while keeping the simulation bit-identical —
//! the engine calls [`GuestExec::resume`] at exactly the points where it
//! used to block on a channel, so event order, state fingerprints, and
//! every `RunStats` digest are unchanged.
//!
//! Two backends implement the trait:
//!
//! - [`ThreadGuest`] — the compatibility backend: the guest `Program`
//!   still runs as a Rust closure on an OS thread, and `resume` performs
//!   the old send/recv rendezvous against it. Any `Program` works here.
//! - `guestvm::GuestVm` (separate crate) — the in-process VM: guest
//!   kernels compile to a compact op-stream bytecode and `resume` is a
//!   plain function call into a state machine. Programs opt in by
//!   returning a VM from [`crate::Program::guest_exec`].
//!
//! [`Backend`] selects between them on [`crate::Runner`].

use crate::guest::{GuestOp, GuestResp};
use sim_core::rng::SimRng;
use sim_core::types::Addr;
use std::sync::mpsc::{Receiver, Sender};

/// Which guest execution core a [`crate::Runner`] drives.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// OS-thread rendezvous (the compatibility backend): every
    /// [`crate::Program`] works, at the cost of a real context switch
    /// per simulated guest step.
    #[default]
    Threads,
    /// In-process resumable VM: requires the program to provide a
    /// [`GuestExec`] via [`crate::Program::guest_exec`]. Bit-identical
    /// to [`Backend::Threads`] on the same kernel, orders of magnitude
    /// faster on the host.
    Vm,
}

impl Backend {
    /// Stable lowercase name (used in `BENCH_engine.json` and CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Threads => "threads",
            Backend::Vm => "vm",
        }
    }

    /// Parse a CLI/JSON backend name.
    pub fn from_name(s: &str) -> Option<Backend> {
        match s.to_ascii_lowercase().as_str() {
            "threads" | "thread" | "rendezvous" => Some(Backend::Threads),
            "vm" | "guestvm" => Some(Backend::Vm),
            _ => None,
        }
    }
}

/// Everything a guest needs to construct its execution state for one
/// simulated thread; handed to [`crate::Program::guest_exec`] by the
/// runner (the single guest-construction entry point).
#[derive(Clone, Debug)]
pub struct GuestEnv {
    /// Simulated thread id (== core id).
    pub tid: usize,
    /// Total simulated threads in the run.
    pub threads: usize,
    /// Per-thread deterministic RNG (forked from the run seed exactly
    /// like the thread backend's `GuestCtx.rng`).
    pub rng: SimRng,
    /// Guest-side runtime policy (retry budget, fallback kind, CGL).
    pub policy: crate::guest::GuestPolicy,
    /// Address of the global fallback/CGL lock word.
    pub lock_addr: Addr,
}

/// Opaque saved guest state for backends that support cheap
/// checkpointing (see [`GuestExec::snapshot`]).
pub struct GuestSnapshot(pub Box<dyn std::any::Any + Send>);

/// A resumable guest: the engine's view of one simulated thread.
///
/// ## Contract
///
/// The engine calls [`GuestExec::resume`] exactly once per `Recv`
/// rendezvous point. The **first** call carries a synthetic
/// [`GuestResp::Done`] kick (there is no previous operation to answer);
/// every later call carries the response to the operation returned by
/// the previous call. After the guest returns [`GuestOp::Exit`] the
/// engine never calls `resume` again.
///
/// Guests execute in zero simulated time: all host-side work inside
/// `resume` happens "between cycles" and must be deterministic — the
/// returned op may depend only on the response history and the guest's
/// own state.
///
/// Dropping a `GuestExec` releases it: an abandoned run (deadlock /
/// cycle budget) simply drops the boxes, which for [`ThreadGuest`]
/// closes the rendezvous channels and unblocks the OS thread.
pub trait GuestExec {
    /// Deliver `resp` and return the guest's next operation.
    fn resume(&mut self, resp: GuestResp) -> GuestOp;

    /// Capture the guest's complete execution state, if the backend
    /// supports cheap checkpointing (the VM does; the thread backend
    /// cannot — an OS thread's stack is not capturable in safe Rust).
    fn snapshot(&self) -> Option<GuestSnapshot> {
        None
    }

    /// Restore state captured by [`GuestExec::snapshot`] on the same
    /// guest. Returns `false` (state unchanged) if the snapshot is not
    /// one of this guest's or the backend has no checkpoint support.
    fn restore(&mut self, snap: &GuestSnapshot) -> bool {
        let _ = snap;
        false
    }
}

/// Compatibility backend: the engine-side half of the OS-thread
/// rendezvous. The guest `Program` runs on its own thread against a
/// `GuestCtx`; this adapter turns the engine's poll into the historical
/// send-response / receive-op pair.
pub struct ThreadGuest {
    to_guest: Sender<GuestResp>,
    from_guest: Receiver<GuestOp>,
    core: usize,
    started: bool,
}

impl ThreadGuest {
    /// Wrap the engine-side channel endpoints for `core`.
    pub fn new(core: usize, to_guest: Sender<GuestResp>, from_guest: Receiver<GuestOp>) -> Self {
        ThreadGuest {
            to_guest,
            from_guest,
            core,
            started: false,
        }
    }

    fn recv(&self) -> GuestOp {
        if let Ok(secs) = std::env::var("LOCKILLER_WALL_TIMEOUT") {
            let dur = std::time::Duration::from_secs(secs.parse().unwrap_or(30));
            match self.from_guest.recv_timeout(dur) {
                Ok(op) => op,
                Err(e) => panic!("guest {} unresponsive ({e:?}) — lost response?", self.core),
            }
        } else {
            self.from_guest
                .recv()
                .expect("guest thread terminated without Exit")
        }
    }
}

impl GuestExec for ThreadGuest {
    fn resume(&mut self, resp: GuestResp) -> GuestOp {
        if self.started {
            self.to_guest.send(resp).expect("guest thread died");
        } else {
            // First poll: the guest thread is already running toward its
            // first op; the synthetic kick is swallowed here.
            self.started = true;
        }
        self.recv()
    }
}
