//! One-call simulation driver: configure a Table-II system, run a
//! [`Program`] on it, get [`RunStats`] back.

use crate::engine::Engine;
use crate::flatmem::{FlatMem, SetupCtx};
use crate::guest::{GuestCtx, GuestPolicy};
use crate::program::Program;
use crate::system::SystemKind;
use sim_core::config::SystemConfig;
use sim_core::obs::ObsHandle;
use sim_core::rng::SimRng;
use sim_core::stats::RunStats;
use std::sync::mpsc::channel;

/// Builder for a simulation run.
#[derive(Clone)]
pub struct Runner {
    kind: SystemKind,
    cfg: SystemConfig,
    threads: usize,
    seed: u64,
    validate: bool,
    retries: Option<u32>,
    tracing: bool,
    obs: Option<ObsHandle>,
}

impl Runner {
    pub fn new(kind: SystemKind) -> Runner {
        Runner {
            kind,
            cfg: SystemConfig::table1(),
            threads: 2,
            seed: 0xC0FFEE,
            validate: true,
            retries: None,
            tracing: false,
            obs: None,
        }
    }

    /// Attach an observability sink (span tracing + periodic metric
    /// sampling; see `sim_core::obs`). Sinks are write-only, so attaching
    /// one cannot change the simulated outcome.
    pub fn obs(mut self, obs: ObsHandle) -> Runner {
        self.obs = Some(obs);
        self
    }

    /// Record a structured execution trace (see [`crate::trace`]);
    /// retrieve it with [`Runner::run_traced`].
    pub fn tracing(mut self) -> Runner {
        self.tracing = true;
        self
    }

    /// Override the HTM retry budget (`TME_MAX_RETRIES`), e.g. for the
    /// retry-budget ablation study.
    pub fn retries(mut self, n: u32) -> Runner {
        self.retries = Some(n);
        self
    }

    /// Number of simulated worker threads (each pinned to one core).
    pub fn threads(mut self, n: usize) -> Runner {
        self.threads = n;
        self
    }

    /// Replace the hardware configuration (cache sensitivity studies).
    pub fn config(mut self, cfg: SystemConfig) -> Runner {
        self.cfg = cfg;
        self
    }

    pub fn seed(mut self, seed: u64) -> Runner {
        self.seed = seed;
        self
    }

    /// Skip the program's post-run validation (used by tests that check
    /// failure behaviour).
    pub fn no_validate(mut self) -> Runner {
        self.validate = false;
        self
    }

    pub fn kind(&self) -> SystemKind {
        self.kind
    }

    /// Run `prog` to completion; panics if post-run validation fails.
    pub fn run<P: Program>(&self, prog: &mut P) -> RunStats {
        let (stats, mem) = self.run_raw(prog);
        if self.validate {
            if let Err(e) = prog.validate(&mem) {
                panic!(
                    "validation failed: {} on {} ({} threads): {e}",
                    prog.name(),
                    self.kind.name(),
                    self.threads
                );
            }
        }
        stats
    }

    /// Run with tracing enabled, returning the event trace too.
    pub fn run_traced<P: Program>(
        &self,
        prog: &mut P,
    ) -> (RunStats, Vec<crate::trace::TraceEvent>) {
        let mut me = self.clone();
        me.tracing = true;
        let (stats, _mem, trace) = me.run_full(prog);
        (stats, trace)
    }

    /// Run and return both the statistics and the final memory image.
    pub fn run_raw<P: Program>(&self, prog: &mut P) -> (RunStats, FlatMem) {
        let (stats, mem, _) = self.run_full(prog);
        (stats, mem)
    }

    /// Run with tracing enabled, returning statistics, the final memory
    /// image, and the event trace. Checked-mode harnesses (tmcheck) use
    /// this to validate program output and analyze the trace in one run;
    /// no validation happens here.
    pub fn run_traced_raw<P: Program>(
        &self,
        prog: &mut P,
    ) -> (RunStats, FlatMem, Vec<crate::trace::TraceEvent>) {
        let mut me = self.clone();
        me.tracing = true;
        me.run_full(prog)
    }

    fn run_full<P: Program>(
        &self,
        prog: &mut P,
    ) -> (RunStats, FlatMem, Vec<crate::trace::TraceEvent>) {
        let mut cfg = self.cfg.clone();
        cfg.policy = self.kind.policy();
        if let Some(r) = self.retries {
            cfg.policy.max_retries = r;
        }
        assert!(
            self.threads >= 1 && self.threads <= cfg.num_cores,
            "thread count {} exceeds {} cores",
            self.threads,
            cfg.num_cores
        );

        // Setup phase: the fallback lock gets its own line, then the
        // program builds its structures. Pages touched here are pre-mapped.
        let mut setup = SetupCtx::new();
        let lock_addr = setup.alloc(8);
        prog.setup(&mut setup, self.threads);
        let (mem, mapped_pages) = setup.into_mem();

        let mut engine = Engine::new(cfg.clone(), mem, self.threads, lock_addr, mapped_pages);
        if self.tracing || cfg.check.enabled {
            engine.trace = crate::trace::Trace::enabled();
        }
        if let Some(h) = &self.obs {
            engine.set_obs(h.clone());
        }

        let gpolicy = GuestPolicy {
            coarse_grained_lock: cfg.policy.coarse_grained_lock,
            htmlock: cfg.policy.htmlock,
            max_retries: cfg.policy.max_retries,
            fallback_on_capacity: cfg.policy.fallback_on_capacity,
        };

        let mut base_rng = SimRng::new(self.seed);
        let mut guests = Vec::with_capacity(self.threads);
        for tid in 0..self.threads {
            let (op_tx, op_rx) = channel();
            let (resp_tx, resp_rx) = channel();
            engine.register(tid, resp_tx, op_rx);
            guests.push(GuestCtx::new(
                tid,
                self.threads,
                base_rng.fork(tid as u64),
                gpolicy,
                lock_addr,
                op_tx,
                resp_rx,
            ));
        }

        std::thread::scope(|s| {
            for mut g in guests {
                let p: &P = prog;
                s.spawn(move || {
                    p.run(&mut g);
                    g.exit();
                });
            }
            engine.run();
        });

        let trace = engine.trace.take();
        let (stats, mem) = engine.into_stats();
        (stats, mem, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let r = Runner::new(SystemKind::Baseline);
        assert_eq!(r.kind(), SystemKind::Baseline);
        let r = r.threads(4).seed(1);
        assert_eq!(r.threads, 4);
        assert_eq!(r.seed, 1);
    }
}
