//! One-call simulation driver: configure a Table-II system, run a
//! [`Program`] on it, get a [`RunOutput`] back.
//!
//! [`Runner::run`] is the single entry point: it always returns the
//! statistics, the final memory image, and — when tracing was requested
//! via [`Runner::tracing`] or checked mode — the structured event trace.
//! [`Runner::backend`] selects the guest execution core: the OS-thread
//! rendezvous (default, works for every [`Program`]) or the in-process
//! resumable VM ([`crate::Backend::Vm`], for programs that provide a
//! [`crate::GuestExec`] through [`Program::guest_exec`]). All guest
//! construction funnels through that one `GuestExec`-aware seam — there
//! is no ad-hoc channel plumbing at call sites.
//!
//! `Runner` is plain data (`Send`), so batch executors like
//! `lockiller_bench::tmlab` can build one per worker thread and fan
//! simulation points out across host cores.

use crate::engine::Engine;
use crate::exec::{Backend, GuestEnv, ThreadGuest};
use crate::flatmem::{FlatMem, SetupCtx};
use crate::guest::{GuestCtx, GuestPolicy};
use crate::program::Program;
use crate::sched::{RunEnd, Scheduler};
use crate::system::SystemKind;
use crate::trace::{Trace, TraceEvent};
use sim_core::config::{PolicyConfig, SystemConfig};
use sim_core::obs::ObsHandle;
use sim_core::prof::ProfReport;
use sim_core::rng::SimRng;
use sim_core::stats::RunStats;
use sim_core::types::{Addr, Cycle};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::channel;

/// Everything one simulation produces.
///
/// `stats` is the aggregate counters every caller wants; `mem` is the
/// final simulated memory image (the serializability oracle fed to
/// [`Program::validate`]); `trace` is the structured event trace,
/// present iff tracing was enabled ([`Runner::tracing`] or
/// `cfg.check.enabled`).
#[must_use = "a RunOutput carries the run's statistics, memory image, and trace"]
#[derive(Debug)]
pub struct RunOutput {
    /// Aggregate statistics (cycles, commits, aborts, NoC/LLC counters).
    pub stats: RunStats,
    /// Structured event trace; `Some` iff tracing was enabled.
    pub trace: Option<Trace>,
    /// Final simulated memory image.
    pub mem: FlatMem,
    /// How the run terminated. Always [`RunEnd::Done`] from
    /// [`Runner::run`] (which panics otherwise); [`Runner::run_scheduled`]
    /// reports deadlocks and blown cycle budgets here instead.
    pub end: RunEnd,
    /// Host-side self-profile; `Some` iff [`Runner::profile`] was
    /// requested. Pure host observation — enabling it cannot change
    /// `stats`, `trace`, or `mem` (tests assert byte-identity).
    pub host_prof: Option<ProfReport>,
}

impl RunOutput {
    /// Consume the output keeping only the statistics.
    pub fn into_stats(self) -> RunStats {
        self.stats
    }

    /// The traced events, or an empty slice on an untraced run.
    pub fn trace_events(&self) -> &[TraceEvent] {
        self.trace.as_ref().map_or(&[], Trace::events)
    }

    /// Take ownership of the traced events (empty on an untraced run).
    pub fn take_trace_events(&mut self) -> Vec<TraceEvent> {
        self.trace.as_mut().map(Trace::take).unwrap_or_default()
    }
}

/// Builder for a simulation run.
#[derive(Clone)]
pub struct Runner {
    kind: SystemKind,
    cfg: SystemConfig,
    threads: usize,
    seed: u64,
    validate: bool,
    retries: Option<u32>,
    policy: Option<PolicyConfig>,
    max_cycles: Option<Cycle>,
    tracing: bool,
    obs: Option<ObsHandle>,
    backend: Backend,
    profile: bool,
}

impl Runner {
    pub fn new(kind: SystemKind) -> Runner {
        Runner {
            kind,
            cfg: SystemConfig::table1(),
            threads: 2,
            seed: 0xC0FFEE,
            validate: true,
            retries: None,
            policy: None,
            max_cycles: None,
            tracing: false,
            obs: None,
            backend: Backend::default(),
            profile: false,
        }
    }

    /// Select the guest execution core (see [`crate::exec`]). The
    /// default [`Backend::Threads`] runs any [`Program`];
    /// [`Backend::Vm`] requires the program to provide a VM guest via
    /// [`Program::guest_exec`] and panics otherwise.
    pub fn backend(mut self, b: Backend) -> Runner {
        self.backend = b;
        self
    }

    /// Attach an observability sink (span tracing + periodic metric
    /// sampling; see `sim_core::obs`). Sinks are write-only, so attaching
    /// one cannot change the simulated outcome.
    pub fn obs(mut self, obs: ObsHandle) -> Runner {
        self.obs = Some(obs);
        self
    }

    /// Record a structured execution trace (see [`crate::trace`]);
    /// retrieve it from [`RunOutput::trace`].
    pub fn tracing(mut self) -> Runner {
        self.tracing = true;
        self
    }

    /// Enable host-side self-profiling (`tmprof`, see `sim_core::prof`);
    /// retrieve the phase tree from [`RunOutput::host_prof`]. The
    /// profiler only reads the host clock, so the simulated outcome is
    /// byte-identical with or without it.
    pub fn profile(mut self) -> Runner {
        self.profile = true;
        self
    }

    /// Override the HTM retry budget (`TME_MAX_RETRIES`), e.g. for the
    /// retry-budget ablation study.
    pub fn retries(mut self, n: u32) -> Runner {
        self.retries = Some(n);
        self
    }

    /// Replace the whole policy block. The run normally derives its
    /// policy from the [`SystemKind`] (any policy inside
    /// [`Runner::config`] is overwritten); this override is applied *on
    /// top* of the kind's policy, for callers that need to tweak policy
    /// knobs — e.g. the schedule explorer disabling the wake-up safety
    /// net. Prefer starting from `kind.policy()` when building one.
    pub fn policy(mut self, p: PolicyConfig) -> Runner {
        self.policy = Some(p);
        self
    }

    /// Bound the run to `limit` simulated cycles; exceeding it ends the
    /// run with [`RunEnd::CycleLimit`] (only observable through
    /// [`Runner::run_scheduled`] — [`Runner::run`] panics on it).
    pub fn max_cycles(mut self, limit: Cycle) -> Runner {
        self.max_cycles = Some(limit);
        self
    }

    /// Number of simulated worker threads (each pinned to one core).
    pub fn threads(mut self, n: usize) -> Runner {
        self.threads = n;
        self
    }

    /// Replace the hardware configuration (cache sensitivity studies).
    pub fn config(mut self, cfg: SystemConfig) -> Runner {
        self.cfg = cfg;
        self
    }

    pub fn seed(mut self, seed: u64) -> Runner {
        self.seed = seed;
        self
    }

    /// Skip the program's post-run validation (used by tests that check
    /// failure behaviour).
    pub fn no_validate(mut self) -> Runner {
        self.validate = false;
        self
    }

    pub fn kind(&self) -> SystemKind {
        self.kind
    }

    /// Run `prog` to completion.
    ///
    /// Unless [`Runner::no_validate`] was called, the program's post-run
    /// invariant check runs on the final memory image and a failure
    /// panics (tests rely on that). The returned [`RunOutput`] carries
    /// the statistics, the memory image, and — iff tracing was enabled —
    /// the event trace.
    pub fn run<P: Program>(&self, prog: &mut P) -> RunOutput {
        let out = self.run_full(prog);
        match &out.end {
            RunEnd::Done => {}
            RunEnd::Deadlock { stuck } => {
                panic!("deadlock: no events but threads alive (cores {stuck:?} unfinished)")
            }
            RunEnd::CycleLimit { at } => panic!("cycle budget exhausted at cycle {at}"),
        }
        if self.validate {
            if let Err(e) = prog.validate(&out.mem) {
                panic!(
                    "validation failed: {} on {} ({} threads): {e}",
                    prog.name(),
                    self.kind.name(),
                    self.threads
                );
            }
        }
        out
    }

    /// Run `prog` with `sched` resolving every same-cycle tie-break (see
    /// [`crate::sched`]). Unlike [`Runner::run`], a deadlocked or
    /// budget-limited run returns normally with the outcome in
    /// [`RunOutput::end`] — the schedule explorer treats those as
    /// verification results, not harness failures — and post-run
    /// validation only applies to completed runs.
    pub fn run_scheduled<P: Program>(&self, prog: &mut P, sched: &mut dyn Scheduler) -> RunOutput {
        let out = self.run_inner(prog, Some(sched));
        if self.validate && out.end.is_done() {
            if let Err(e) = prog.validate(&out.mem) {
                panic!(
                    "validation failed: {} on {} ({} threads): {e}",
                    prog.name(),
                    self.kind.name(),
                    self.threads
                );
            }
        }
        out
    }

    fn run_full<P: Program>(&self, prog: &mut P) -> RunOutput {
        self.run_inner(prog, None)
    }

    fn run_inner<P: Program>(&self, prog: &mut P, sched: Option<&mut dyn Scheduler>) -> RunOutput {
        let mut cfg = self.cfg.clone();
        cfg.policy = self.kind.policy();
        if let Some(p) = &self.policy {
            cfg.policy = p.clone();
        }
        if let Some(r) = self.retries {
            cfg.policy.max_retries = r;
        }
        assert!(
            self.threads >= 1 && self.threads <= cfg.num_cores,
            "thread count {} exceeds {} cores",
            self.threads,
            cfg.num_cores
        );

        // Setup phase: the fallback lock gets its own line, then the
        // program builds its structures. Pages touched here are pre-mapped.
        let mut setup = SetupCtx::new();
        let lock_addr = setup.alloc(8);
        prog.setup(&mut setup, self.threads);
        let (mem, mapped_pages) = setup.into_mem();

        let mut engine = Engine::new(cfg.clone(), mem, self.threads, lock_addr, mapped_pages);
        if let Some(limit) = self.max_cycles {
            engine.set_max_cycles(limit);
        }
        let traced = self.tracing || cfg.check.enabled;
        if traced {
            engine.trace = Trace::enabled();
        }
        if let Some(h) = &self.obs {
            engine.set_obs(h.clone());
        }
        if self.profile {
            engine.enable_prof();
        }

        let gpolicy = GuestPolicy {
            coarse_grained_lock: cfg.policy.coarse_grained_lock,
            htmlock: cfg.policy.htmlock,
            max_retries: cfg.policy.max_retries,
            fallback_on_capacity: cfg.policy.fallback_on_capacity,
        };

        let end = match self.backend {
            Backend::Threads => self.drive_threads(prog, &mut engine, sched, gpolicy, lock_addr),
            Backend::Vm => self.drive_vm(prog, &mut engine, sched, gpolicy, lock_addr),
        };

        let trace = traced.then(|| std::mem::take(&mut engine.trace));
        let host_prof = engine.take_prof();
        let (mut stats, mem) = engine.into_stats();
        if let Some(t) = &trace {
            // `into_stats` read the drop counter from the (already taken)
            // engine-side trace; restore it from the real one.
            stats.trace_dropped = t.dropped();
        }
        RunOutput {
            stats,
            trace,
            mem,
            end,
            host_prof,
        }
    }

    /// Thread backend: spawn one OS thread per guest running the
    /// program body against a [`GuestCtx`], with [`ThreadGuest`]
    /// adapters registered engine-side. Guests whose run ends early
    /// (deadlock / cycle budget) panic on their closed rendezvous
    /// channels; the `abandoned` flag marks those panics as expected so
    /// the scope doesn't re-raise them.
    fn drive_threads<'g, P: Program>(
        &self,
        prog: &'g P,
        engine: &mut Engine<'g>,
        sched: Option<&mut dyn Scheduler>,
        gpolicy: GuestPolicy,
        lock_addr: Addr,
    ) -> RunEnd {
        let mut base_rng = SimRng::new(self.seed);
        let mut guests = Vec::with_capacity(self.threads);
        for tid in 0..self.threads {
            let (op_tx, op_rx) = channel();
            let (resp_tx, resp_rx) = channel();
            engine.register(tid, Box::new(ThreadGuest::new(tid, resp_tx, op_rx)));
            guests.push(GuestCtx::new(
                tid,
                self.threads,
                base_rng.fork(tid as u64),
                gpolicy,
                lock_addr,
                op_tx,
                resp_rx,
            ));
        }
        let abandoned = AtomicBool::new(false);
        std::thread::scope(|s| {
            for mut g in guests {
                let p: &P = prog;
                let ab = &abandoned;
                s.spawn(move || {
                    let r = catch_unwind(AssertUnwindSafe(move || {
                        p.run(&mut g);
                        g.exit();
                    }));
                    if let Err(e) = r {
                        if !ab.load(Ordering::SeqCst) {
                            resume_unwind(e);
                        }
                    }
                });
            }
            let end = engine.run_with(sched);
            if !end.is_done() {
                // Order matters: mark abandonment before closing the
                // channels, so no guest can observe the hang-up first.
                abandoned.store(true, Ordering::SeqCst);
                engine.release_guests();
            }
            end
        })
    }

    /// VM backend: every guest is an in-process resumable state machine
    /// obtained from [`Program::guest_exec`] — no OS threads, no
    /// channels, and nothing to abandon on early termination.
    fn drive_vm<'g, P: Program>(
        &self,
        prog: &'g P,
        engine: &mut Engine<'g>,
        sched: Option<&mut dyn Scheduler>,
        gpolicy: GuestPolicy,
        lock_addr: Addr,
    ) -> RunEnd {
        let mut base_rng = SimRng::new(self.seed);
        for tid in 0..self.threads {
            let env = GuestEnv {
                tid,
                threads: self.threads,
                rng: base_rng.fork(tid as u64),
                policy: gpolicy,
                lock_addr,
            };
            let exec = prog.guest_exec(env).unwrap_or_else(|| {
                panic!(
                    "program '{}' provides no VM guest (Program::guest_exec \
                     returned None); run it with Backend::Threads",
                    prog.name()
                )
            });
            engine.register(tid, exec);
        }
        engine.run_with(sched)
    }
}

// `Runner` must stay `Send`: the tmlab batch executor builds one per
// worker thread. This fails to compile if a non-Send field sneaks in.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Runner>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let r = Runner::new(SystemKind::Baseline);
        assert_eq!(r.kind(), SystemKind::Baseline);
        let r = r.threads(4).seed(1);
        assert_eq!(r.threads, 4);
        assert_eq!(r.seed, 1);
    }

    #[test]
    fn trace_is_none_unless_requested() {
        struct Nop;
        impl Program for Nop {
            fn name(&self) -> &str {
                "nop"
            }
            fn setup(&mut self, _s: &mut SetupCtx, _threads: usize) {}
            fn run(&self, ctx: &mut GuestCtx) {
                let _ = ctx;
            }
        }
        let cfg = SystemConfig::testing(2);
        let plain = Runner::new(SystemKind::Baseline)
            .threads(1)
            .config(cfg.clone())
            .run(&mut Nop);
        assert!(plain.trace.is_none());
        assert!(plain.trace_events().is_empty());
        let traced = Runner::new(SystemKind::Baseline)
            .threads(1)
            .config(cfg)
            .tracing()
            .run(&mut Nop);
        assert!(traced.trace.is_some());
    }
}
