//! Structured execution tracing: the engine can record per-core
//! transactional events (begin/commit/abort/fallback/switch/reject) with
//! cycle timestamps, for debugging, visualization, and tests that assert
//! on event orderings rather than aggregate counters.

use sim_core::stats::AbortCause;
use sim_core::types::{CoreId, Cycle, LineAddr};

/// One traced event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// `xbegin` — a speculative attempt starts.
    TxBegin,
    /// `xend` — speculative commit.
    Commit,
    /// Abort delivered to the guest, with its cause.
    Abort(AbortCause),
    /// The retry loop gave up and took the fallback path.
    Fallback,
    /// TL lock transaction entered (`hlbegin`).
    HlBegin,
    /// TL/STL lock transaction finished (`hlend`).
    HlEnd,
    /// Proactive switch authorized: the transaction continues as STL.
    SwitchGranted,
    /// Proactive switch denied (another lock transaction active).
    SwitchDenied,
    /// This core's request was rejected by the recovery mechanism
    /// (`by_sig` = by the LLC overflow signatures).
    Rejected { by_sig: bool },
    /// A wake-up arrived and the parked request retried.
    Woken,
    /// Fallback critical section finished (lock released).
    FallbackEnd,
    /// A parked request hit the wake-up safety-net timeout and retried
    /// without a wake-up (liveness escape hatch; should never fire).
    WakeTimeout,
    /// Access-level: a load resolved its value. `txn` is the per-attempt
    /// transaction id (0 = non-transactional), `prio` the recovery
    /// priority the core held at that instant. Checked mode only.
    Read { line: LineAddr, txn: u64, prio: u64 },
    /// Access-level: a store resolved. `buffered` distinguishes HTM
    /// writes (visible at commit) from immediate lock-mode / non-tx
    /// writes (visible at this event). Checked mode only.
    Write {
        line: LineAddr,
        txn: u64,
        buffered: bool,
    },
    /// Protocol-level: this core NACKed `to`'s request for `line`.
    /// Checked mode only.
    NackSent { to: CoreId, line: LineAddr },
    /// Protocol-level: this core sent a wake-up to `to`. Checked mode
    /// only.
    WakeSent { to: CoreId },
}

impl TraceKind {
    /// Compact single-character glyph for timeline rendering.
    pub fn glyph(self) -> char {
        match self {
            TraceKind::TxBegin => '(',
            TraceKind::Commit => ')',
            TraceKind::Abort(_) => 'x',
            TraceKind::Fallback => 'F',
            TraceKind::HlBegin => '[',
            TraceKind::HlEnd => ']',
            TraceKind::SwitchGranted => 'S',
            TraceKind::SwitchDenied => 's',
            TraceKind::Rejected { .. } => 'r',
            TraceKind::Woken => 'w',
            TraceKind::FallbackEnd => 'f',
            TraceKind::WakeTimeout => 'T',
            TraceKind::Read { .. } => 'L',
            TraceKind::Write { .. } => 'W',
            TraceKind::NackSent { .. } => 'n',
            TraceKind::WakeSent { .. } => 'k',
        }
    }
}

/// A `(cycle, core, kind)` record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    pub cycle: Cycle,
    pub core: CoreId,
    pub kind: TraceKind,
}

/// Default event-storage bound: ~4M events (≈130 MB). Large enough for
/// every checked-mode run the test suite performs; a hard ceiling so a
/// long traced run degrades into a truncated trace plus a drop counter
/// instead of unbounded memory growth.
pub const DEFAULT_TRACE_CAP: usize = 4 << 20;

/// Event sink owned by the engine; disabled by default (zero cost beyond
/// a branch). Storage is bounded: once `cap` events are held, further
/// events are counted in `dropped` rather than stored, so the retained
/// prefix stays contiguous (what the trace checkers analyze).
#[derive(Debug)]
pub struct Trace {
    enabled: bool,
    cap: usize,
    dropped: u64,
    events: Vec<TraceEvent>,
}

impl Default for Trace {
    fn default() -> Trace {
        Trace {
            enabled: false,
            cap: DEFAULT_TRACE_CAP,
            dropped: 0,
            events: Vec::new(),
        }
    }
}

impl Trace {
    pub fn enabled() -> Trace {
        Trace {
            enabled: true,
            ..Trace::default()
        }
    }

    /// Enabled trace with an explicit event-storage bound.
    pub fn with_capacity(cap: usize) -> Trace {
        Trace {
            enabled: true,
            cap,
            ..Trace::default()
        }
    }

    #[inline]
    pub fn record(&mut self, cycle: Cycle, core: CoreId, kind: TraceKind) {
        if self.enabled {
            if self.events.len() < self.cap {
                self.events.push(TraceEvent { cycle, core, kind });
            } else {
                self.dropped += 1;
            }
        }
    }

    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Events discarded because the storage bound was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Render a compact ASCII timeline: one lane per core, one column per
/// `cycles_per_col` cycles; multiple events in a column keep the last
/// glyph.
pub fn render_timeline(events: &[TraceEvent], threads: usize, width: usize) -> String {
    if events.is_empty() {
        return String::from("(no events)\n");
    }
    let end = events.iter().map(|e| e.cycle).max().unwrap() + 1;
    let per_col = end.div_ceil(width as u64).max(1);
    let cols = end.div_ceil(per_col) as usize;
    let mut lanes = vec![vec!['.'; cols]; threads];
    for e in events {
        let col = (e.cycle / per_col) as usize;
        if e.core < threads && col < cols {
            lanes[e.core][col] = e.kind.glyph();
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "timeline: {end} cycles, {per_col} cycles/column\n\
         legend: ( begin  ) commit  x abort  r rejected  w woken  F fallback  [ hlbegin  ] hlend  S switch\n"
    ));
    for (c, lane) in lanes.iter().enumerate() {
        out.push_str(&format!("core {c:>2} |"));
        out.extend(lane.iter());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::default();
        t.record(5, 0, TraceKind::TxBegin);
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::enabled();
        t.record(1, 0, TraceKind::TxBegin);
        t.record(9, 1, TraceKind::Commit);
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].kind, TraceKind::TxBegin);
        assert_eq!(t.events()[1].cycle, 9);
    }

    #[test]
    fn capped_trace_counts_drops_and_keeps_prefix() {
        let mut t = Trace::with_capacity(2);
        t.record(1, 0, TraceKind::TxBegin);
        t.record(2, 0, TraceKind::Commit);
        t.record(3, 0, TraceKind::TxBegin);
        t.record(4, 0, TraceKind::Commit);
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.events()[1].cycle, 2, "prefix retained, not a ring");
        // Taking the events does not reset the drop counter: the engine
        // reads it afterwards to populate `RunStats::trace_dropped`.
        let _ = t.take();
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn glyphs_are_unique() {
        let kinds = [
            TraceKind::TxBegin,
            TraceKind::Commit,
            TraceKind::Abort(AbortCause::Mc),
            TraceKind::Fallback,
            TraceKind::HlBegin,
            TraceKind::HlEnd,
            TraceKind::SwitchGranted,
            TraceKind::SwitchDenied,
            TraceKind::Rejected { by_sig: false },
            TraceKind::Woken,
            TraceKind::FallbackEnd,
            TraceKind::WakeTimeout,
            TraceKind::Read {
                line: LineAddr(0),
                txn: 0,
                prio: 0,
            },
            TraceKind::Write {
                line: LineAddr(0),
                txn: 0,
                buffered: false,
            },
            TraceKind::NackSent {
                to: 0,
                line: LineAddr(0),
            },
            TraceKind::WakeSent { to: 0 },
        ];
        let mut glyphs: Vec<char> = kinds.iter().map(|k| k.glyph()).collect();
        glyphs.sort_unstable();
        glyphs.dedup();
        assert_eq!(glyphs.len(), kinds.len());
    }

    #[test]
    fn timeline_renders_lanes() {
        let events = vec![
            TraceEvent {
                cycle: 0,
                core: 0,
                kind: TraceKind::TxBegin,
            },
            TraceEvent {
                cycle: 50,
                core: 0,
                kind: TraceKind::Commit,
            },
            TraceEvent {
                cycle: 25,
                core: 1,
                kind: TraceKind::Abort(AbortCause::Mc),
            },
        ];
        let s = render_timeline(&events, 2, 10);
        assert!(s.contains("core  0 |"));
        assert!(s.contains("core  1 |"));
        assert!(s.contains('('));
        assert!(s.contains('x'));
    }

    #[test]
    fn timeline_handles_empty() {
        assert_eq!(render_timeline(&[], 2, 10), "(no events)\n");
    }

    #[test]
    fn timeline_drops_out_of_range_cores() {
        // An event on a core >= the lane count must be dropped silently
        // rather than panicking or growing the lane set.
        let events = vec![
            TraceEvent {
                cycle: 0,
                core: 0,
                kind: TraceKind::TxBegin,
            },
            TraceEvent {
                cycle: 3,
                core: 7,
                kind: TraceKind::Commit,
            },
        ];
        let s = render_timeline(&events, 2, 10);
        assert!(s.contains("core  0 |"));
        assert!(s.contains("core  1 |"));
        assert!(!s.contains("core  7"));
        // The out-of-range commit glyph must not leak into any lane
        // (the legend line legitimately contains one).
        let leaked = s.lines().any(|l| l.starts_with("core") && l.contains(')'));
        assert!(!leaked, "dropped event rendered anyway:\n{s}");
    }

    #[test]
    fn timeline_width_one_collapses_to_single_column() {
        let events = vec![
            TraceEvent {
                cycle: 0,
                core: 0,
                kind: TraceKind::TxBegin,
            },
            TraceEvent {
                cycle: 99,
                core: 0,
                kind: TraceKind::Commit,
            },
        ];
        let s = render_timeline(&events, 1, 1);
        // Both events land in the one column; the later glyph wins.
        let lane = s.lines().find(|l| l.starts_with("core  0")).unwrap();
        let cells: String = lane.split('|').nth(1).unwrap().to_string();
        assert_eq!(cells, ")");
    }

    #[test]
    fn timeline_single_cycle_run() {
        // All events at cycle 0: end = 1, so per_col = 1 and exactly one
        // column exists regardless of the requested width.
        let events = vec![TraceEvent {
            cycle: 0,
            core: 0,
            kind: TraceKind::Fallback,
        }];
        let s = render_timeline(&events, 1, 80);
        let lane = s.lines().find(|l| l.starts_with("core  0")).unwrap();
        let cells = lane.split('|').nth(1).unwrap();
        assert_eq!(cells, "F");
        assert!(s.contains("1 cycles, 1 cycles/column"));
    }
}
