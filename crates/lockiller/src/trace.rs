//! Structured execution tracing: the engine can record per-core
//! transactional events (begin/commit/abort/fallback/switch/reject) with
//! cycle timestamps, for debugging, visualization, and tests that assert
//! on event orderings rather than aggregate counters.

use sim_core::stats::AbortCause;
use sim_core::types::{CoreId, Cycle};

/// One traced event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// `xbegin` — a speculative attempt starts.
    TxBegin,
    /// `xend` — speculative commit.
    Commit,
    /// Abort delivered to the guest, with its cause.
    Abort(AbortCause),
    /// The retry loop gave up and took the fallback path.
    Fallback,
    /// TL lock transaction entered (`hlbegin`).
    HlBegin,
    /// TL/STL lock transaction finished (`hlend`).
    HlEnd,
    /// Proactive switch authorized: the transaction continues as STL.
    SwitchGranted,
    /// Proactive switch denied (another lock transaction active).
    SwitchDenied,
    /// This core's request was rejected by the recovery mechanism
    /// (`by_sig` = by the LLC overflow signatures).
    Rejected { by_sig: bool },
    /// A wake-up arrived and the parked request retried.
    Woken,
}

impl TraceKind {
    /// Compact single-character glyph for timeline rendering.
    pub fn glyph(self) -> char {
        match self {
            TraceKind::TxBegin => '(',
            TraceKind::Commit => ')',
            TraceKind::Abort(_) => 'x',
            TraceKind::Fallback => 'F',
            TraceKind::HlBegin => '[',
            TraceKind::HlEnd => ']',
            TraceKind::SwitchGranted => 'S',
            TraceKind::SwitchDenied => 's',
            TraceKind::Rejected { .. } => 'r',
            TraceKind::Woken => 'w',
        }
    }
}

/// A `(cycle, core, kind)` record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    pub cycle: Cycle,
    pub core: CoreId,
    pub kind: TraceKind,
}

/// Event sink owned by the engine; disabled by default (zero cost beyond
/// a branch).
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Trace {
    pub fn enabled() -> Trace {
        Trace { enabled: true, events: Vec::new() }
    }

    #[inline]
    pub fn record(&mut self, cycle: Cycle, core: CoreId, kind: TraceKind) {
        if self.enabled {
            self.events.push(TraceEvent { cycle, core, kind });
        }
    }

    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

/// Render a compact ASCII timeline: one lane per core, one column per
/// `cycles_per_col` cycles; multiple events in a column keep the last
/// glyph.
pub fn render_timeline(events: &[TraceEvent], threads: usize, width: usize) -> String {
    if events.is_empty() {
        return String::from("(no events)\n");
    }
    let end = events.iter().map(|e| e.cycle).max().unwrap() + 1;
    let per_col = end.div_ceil(width as u64).max(1);
    let cols = end.div_ceil(per_col) as usize;
    let mut lanes = vec![vec!['.'; cols]; threads];
    for e in events {
        let col = (e.cycle / per_col) as usize;
        if e.core < threads && col < cols {
            lanes[e.core][col] = e.kind.glyph();
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "timeline: {} cycles, {} cycles/column\n\
         legend: ( begin  ) commit  x abort  r rejected  w woken  F fallback  [ hlbegin  ] hlend  S switch\n",
        end, per_col
    ));
    for (c, lane) in lanes.iter().enumerate() {
        out.push_str(&format!("core {c:>2} |"));
        out.extend(lane.iter());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::default();
        t.record(5, 0, TraceKind::TxBegin);
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::enabled();
        t.record(1, 0, TraceKind::TxBegin);
        t.record(9, 1, TraceKind::Commit);
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].kind, TraceKind::TxBegin);
        assert_eq!(t.events()[1].cycle, 9);
    }

    #[test]
    fn glyphs_are_unique() {
        let kinds = [
            TraceKind::TxBegin,
            TraceKind::Commit,
            TraceKind::Abort(AbortCause::Mc),
            TraceKind::Fallback,
            TraceKind::HlBegin,
            TraceKind::HlEnd,
            TraceKind::SwitchGranted,
            TraceKind::SwitchDenied,
            TraceKind::Rejected { by_sig: false },
            TraceKind::Woken,
        ];
        let mut glyphs: Vec<char> = kinds.iter().map(|k| k.glyph()).collect();
        glyphs.sort_unstable();
        glyphs.dedup();
        assert_eq!(glyphs.len(), kinds.len());
    }

    #[test]
    fn timeline_renders_lanes() {
        let events = vec![
            TraceEvent { cycle: 0, core: 0, kind: TraceKind::TxBegin },
            TraceEvent { cycle: 50, core: 0, kind: TraceKind::Commit },
            TraceEvent { cycle: 25, core: 1, kind: TraceKind::Abort(AbortCause::Mc) },
        ];
        let s = render_timeline(&events, 2, 10);
        assert!(s.contains("core  0 |"));
        assert!(s.contains("core  1 |"));
        assert!(s.contains('('));
        assert!(s.contains('x'));
    }

    #[test]
    fn timeline_handles_empty() {
        assert_eq!(render_timeline(&[], 2, 10), "(no events)\n");
    }
}
