//! The value layer: one authoritative flat word memory plus per-core
//! speculative write buffers.
//!
//! The coherence protocol guarantees isolation (conflicting accesses abort
//! or are rejected before data is granted), so values can live in a single
//! flat store: speculative stores buffer per core and flush atomically at
//! commit (or at a successful STL switch, which makes them permanent);
//! non-speculative stores write through immediately. See the `coherence`
//! crate docs for why this is equivalent to in-cache versioning.

use sim_core::fxhash::FxHashMap;
use sim_core::types::Addr;

/// Word-addressable flat memory. Grows on demand during setup; guest
/// accesses outside the allocated range are a workload bug and panic.
#[derive(Clone, Debug, Default)]
pub struct FlatMem {
    words: Vec<u64>,
}

impl FlatMem {
    pub fn new() -> FlatMem {
        // Word 0 is the reserved null word.
        FlatMem { words: vec![0] }
    }

    pub fn len(&self) -> usize {
        self.words.len()
    }

    pub fn is_empty(&self) -> bool {
        self.words.len() <= 1
    }

    /// Extend the address space to at least `words` words.
    pub fn grow_to(&mut self, words: usize) {
        if words > self.words.len() {
            self.words.resize(words, 0);
        }
    }

    #[inline]
    pub fn read(&self, a: Addr) -> u64 {
        self.words[a.0 as usize]
    }

    #[inline]
    pub fn write(&mut self, a: Addr, v: u64) {
        self.words[a.0 as usize] = v;
    }

    /// FNV-style digest of all memory, used by serializability oracles in
    /// the test suite.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &w in &self.words {
            h ^= w;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

/// Per-core speculative write buffer.
#[derive(Clone, Debug, Default)]
pub struct WriteBuffer {
    pending: FxHashMap<Addr, u64>,
}

impl WriteBuffer {
    #[inline]
    pub fn write(&mut self, a: Addr, v: u64) {
        self.pending.insert(a, v);
    }

    /// Transactional read: own speculative value, else the flat memory.
    #[inline]
    pub fn read(&self, mem: &FlatMem, a: Addr) -> u64 {
        self.pending.get(&a).copied().unwrap_or_else(|| mem.read(a))
    }

    /// Commit: flush everything to flat memory atomically (the protocol
    /// has kept the written lines exclusive, so this is linearizable at
    /// the commit point).
    pub fn commit(&mut self, mem: &mut FlatMem) {
        for (a, v) in self.pending.drain() {
            mem.write(a, v);
        }
    }

    /// Abort: discard speculative values.
    pub fn discard(&mut self) {
        self.pending.clear();
    }

    pub fn len(&self) -> usize {
        self.pending.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Visit pending writes in address order (deterministic — used for
    /// state fingerprinting).
    pub fn for_each_sorted(&self, mut f: impl FnMut(Addr, u64)) {
        let mut entries: Vec<(Addr, u64)> = self.pending.iter().map(|(a, v)| (*a, *v)).collect();
        entries.sort_by_key(|(a, _)| a.0);
        for (a, v) in entries {
            f(a, v);
        }
    }
}

/// Setup-phase view of memory: a bump allocator with direct (un-timed)
/// access, used to build workload data structures before the simulated
/// region of interest starts. Pages touched during setup count as mapped
/// (no demand-paging faults for them during the run).
pub struct SetupCtx {
    mem: FlatMem,
    brk: u64,
    /// Page-aligned word ranges reserved for demand-paged heaps: their
    /// pages are NOT pre-mapped, so first touches fault during the run.
    unmapped: Vec<(u64, u64)>,
}

/// Words per demand-paging page (4 KiB / 8 bytes).
pub const PAGE_WORDS: u64 = 512;

impl SetupCtx {
    pub fn new() -> SetupCtx {
        SetupCtx {
            mem: FlatMem::new(),
            brk: 8,
            unmapped: Vec::new(),
        }
    }

    /// Allocate `words` words, cache-line aligned to avoid accidental
    /// false sharing between unrelated structures (workloads that *want*
    /// false sharing pack explicitly).
    pub fn alloc(&mut self, words: u64) -> Addr {
        let aligned = (self.brk + 7) & !7;
        self.brk = aligned + words;
        self.mem.grow_to(self.brk as usize + 1);
        Addr(aligned)
    }

    /// Allocate and initialize from a slice.
    pub fn alloc_init(&mut self, data: &[u64]) -> Addr {
        let a = self.alloc(data.len() as u64);
        for (i, &v) in data.iter().enumerate() {
            self.mem.write(a.add(i as u64), v);
        }
        a
    }

    /// Reserve a per-thread heap arena of `words` words and return its
    /// base; used by the transactional allocator in `tmlib`. Unlike
    /// [`SetupCtx::alloc`], the reserved pages are *not* pre-mapped:
    /// first touches during the run raise demand-paging faults, exactly
    /// like fresh heap pages under the original allocator.
    pub fn reserve_arena(&mut self, words: u64) -> Addr {
        // Page-align both ends so no mapped data shares these pages.
        let start = self.brk.next_multiple_of(PAGE_WORDS);
        let end = (start + words).next_multiple_of(PAGE_WORDS);
        self.brk = end;
        self.mem.grow_to(end as usize + 1);
        self.unmapped.push((start, end));
        Addr(start)
    }

    pub fn write(&mut self, a: Addr, v: u64) {
        self.mem.write(a, v);
    }

    pub fn read(&self, a: Addr) -> u64 {
        self.mem.read(a)
    }

    /// Highest allocated word + 1 (every page below is pre-mapped).
    pub fn brk(&self) -> u64 {
        self.brk
    }

    /// Finish setup: returns the memory image and the set of pre-mapped
    /// pages (everything below the break except reserved arenas).
    pub fn into_mem(self) -> (FlatMem, sim_core::fxhash::FxHashSet<u64>) {
        let last_page = self.brk / PAGE_WORDS;
        let mut mapped = sim_core::fxhash::FxHashSet::default();
        'page: for p in 0..=last_page {
            let lo = p * PAGE_WORDS;
            for &(s, e) in &self.unmapped {
                if lo >= s && lo < e {
                    continue 'page;
                }
            }
            mapped.insert(p);
        }
        (self.mem, mapped)
    }
}

impl Default for SetupCtx {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut m = FlatMem::new();
        m.grow_to(100);
        m.write(Addr(42), 7);
        assert_eq!(m.read(Addr(42)), 7);
        assert_eq!(m.read(Addr(43)), 0);
    }

    #[test]
    fn write_buffer_shadows_flat() {
        let mut m = FlatMem::new();
        m.grow_to(100);
        m.write(Addr(1), 10);
        let mut wb = WriteBuffer::default();
        assert_eq!(wb.read(&m, Addr(1)), 10);
        wb.write(Addr(1), 20);
        assert_eq!(wb.read(&m, Addr(1)), 20);
        assert_eq!(m.read(Addr(1)), 10, "flat unchanged before commit");
        wb.commit(&mut m);
        assert_eq!(m.read(Addr(1)), 20);
        assert!(wb.is_empty());
    }

    #[test]
    fn discard_leaves_flat_untouched() {
        let mut m = FlatMem::new();
        m.grow_to(10);
        let mut wb = WriteBuffer::default();
        wb.write(Addr(3), 99);
        wb.discard();
        wb.commit(&mut m);
        assert_eq!(m.read(Addr(3)), 0);
    }

    #[test]
    fn setup_alloc_is_line_aligned() {
        let mut s = SetupCtx::new();
        let a = s.alloc(3);
        let b = s.alloc(3);
        assert_eq!(a.0 % 8, 0);
        assert_eq!(b.0 % 8, 0);
        assert!(b.0 >= a.0 + 3);
        assert_ne!(a.line(), b.line(), "separate allocations share a line");
    }

    #[test]
    fn alloc_init_copies() {
        let mut s = SetupCtx::new();
        let a = s.alloc_init(&[5, 6, 7]);
        assert_eq!(s.read(a), 5);
        assert_eq!(s.read(a.add(2)), 7);
    }

    #[test]
    fn digest_changes_with_content() {
        let mut m = FlatMem::new();
        m.grow_to(50);
        let d0 = m.digest();
        m.write(Addr(9), 1);
        assert_ne!(m.digest(), d0);
    }

    #[test]
    fn null_word_reserved() {
        let s = SetupCtx::new();
        assert!(s.brk() >= 8, "allocations must not hand out the null line");
    }
}
