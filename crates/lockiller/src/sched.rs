//! Scheduler seam: the engine's nondeterministic pick points, exposed.
//!
//! The discrete-event queue orders events by `(cycle, seq)`; the FIFO
//! tie-break among same-cycle events is the **only** nondeterminism in a
//! simulation (guests compute in zero simulated time and every latency is
//! deterministic). A [`Scheduler`] intercepts exactly those tie-breaks:
//! whenever two or more events are pending at the minimum cycle, the
//! engine describes each candidate as an [`EvDesc`] and asks the
//! scheduler which one fires first. Replaying the same decision sequence
//! reproduces the run bit-for-bit; enumerating alternative decisions
//! enumerates every schedule the model can exhibit.
//!
//! [`EvDesc`] also carries a conservative *footprint* (cores touched,
//! cache line, home LLC bank, or "global") from which
//! [`EvDesc::conflicts`] derives the dependence relation used by the
//! `tmverify` partial-order reduction: two events are independent only if
//! their footprints are provably disjoint, so commuting independent
//! events can never change the resulting state.

use sim_core::types::{Cycle, LineAddr};

/// Coarse event category (mirrors the engine's private event enum).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvClass {
    /// Rendezvous: receive the core's next operation.
    Recv,
    /// Deliver a previously scheduled guest response.
    Respond,
    /// A NoC message arrives at the memory subsystem.
    Net,
    /// A memory-subsystem notification lands at a core controller.
    Notice,
    /// Recovery-mechanism retry (RetryLater pause elapsed).
    Retry,
    /// Wake-up safety-net timeout.
    ParkTimeout,
}

/// One schedulable event, described by its footprint.
///
/// `cores` is a bitmask of the core controllers the event can read or
/// write; `line`/`bank` locate the cache line (and its home LLC bank —
/// events on different lines of the same bank still couple through tag
/// LRU and the blocking directory, so dependence is keyed per bank);
/// `global` marks events that touch state shared beyond one bank (HLA
/// arbiter, overflow signatures, commit/abort wake-up fan-out, barrier).
#[derive(Clone, Debug)]
pub struct EvDesc {
    pub class: EvClass,
    /// Bitmask of cores whose controller state the event touches.
    pub cores: u64,
    /// Cache line accessed, if the event is line-addressed.
    pub line: Option<LineAddr>,
    /// Home LLC bank of `line` (same-bank events are dependent).
    pub bank: Option<usize>,
    /// Touches globally shared state; dependent with everything.
    pub global: bool,
    /// Refinement hint for `global` events: the global state touched is
    /// only core-attributable *sync machinery* — commit/abort wake-up
    /// fan-out, the HLA arbiter, lock-mode transitions — never the
    /// barrier, demand paging, or overflow signatures. A whole-program
    /// static analysis ([`StaticIndependence`]) can prove such an event
    /// independent of cores that provably never park, lock, or share a
    /// bank with the event's cores. Meaningless when `global` is false.
    pub sync: bool,
    /// Stable identity hash (class + payload, volatile tags excluded);
    /// used to match the "same" event across replays of one prefix.
    pub id: u64,
}

impl EvDesc {
    /// Conservative dependence: `true` unless the footprints are provably
    /// disjoint. Independent events commute — executing them in either
    /// order reaches the same state — so a schedule explorer only needs
    /// to branch on dependent pairs.
    pub fn conflicts(&self, other: &EvDesc) -> bool {
        self.global
            || other.global
            || (self.cores & other.cores) != 0
            || (self.bank.is_some() && self.bank == other.bank)
    }

    /// Compact human-readable label for witness/debug rendering.
    pub fn label(&self) -> String {
        let mut s = format!("{:?}", self.class);
        if self.cores != 0 && self.cores != u64::MAX {
            s.push_str(":c");
            for c in 0..64 {
                if self.cores & (1 << c) != 0 {
                    s.push_str(&c.to_string());
                }
            }
        }
        if let Some(l) = self.line {
            s.push_str(&format!(":L{}", l.0));
        }
        if self.global {
            s.push_str(":g");
        }
        s
    }
}

/// A statically-computed refinement of [`EvDesc::conflicts`]: extra
/// independence facts a whole-program analysis proved about the guest
/// kernel, consumed by the `tmverify` partial-order reduction so that
/// statically-independent step pairs never generate backtrack points.
///
/// The producer (the `tmstatic` crate) is responsible for soundness: a
/// table may only be constructed when the analysis proved, for the whole
/// program, that (a) no transaction can overflow its speculative
/// capacity (so overflow signatures are never touched and switchingMode
/// never engages), (b) no LLC set can ever evict (so tag-LRU order is
/// unobservable), and (c) `bank_foot`/`pure` over-approximate every
/// reachable footprint, including conditionally-touched lines such as
/// the fallback lock. Under those premises, commuting a refined pair
/// cannot change any reachable state, which is exactly what sleep-set
/// soundness requires. Explorers must ignore the table when protocol
/// fault injection is active — injected faults break the premises.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StaticIndependence {
    /// Per-core bitmask of LLC banks the core's program can ever touch
    /// (data lines plus the fallback lock line when reachable).
    pub bank_foot: Vec<u64>,
    /// Bitmask of cores statically proven *pure*: they never abort,
    /// never take the fallback lock, never park on a rejected request,
    /// and never touch HLA or signature state.
    pub pure: u64,
}

impl StaticIndependence {
    /// True when the table proves `a` and `b` independent even though
    /// the dynamic footprints overlap. Requires: both events attributable
    /// to disjoint core sets, any `global` flag explained by `sync`
    /// machinery, disjoint static bank footprints, and at least one side
    /// consisting solely of pure cores (so no shared sync state exists
    /// for the pair to communicate through).
    /// Whether the table can refine *any* pair at all. A table with no
    /// pure cores is vacuous — installing it must leave exploration
    /// bit-identical to running without one, and callers use this to
    /// assert that (or to skip the install entirely).
    pub fn can_refine_any(&self) -> bool {
        self.pure != 0
    }

    pub fn refines(&self, a: &EvDesc, b: &EvDesc) -> bool {
        if a.cores == 0 || b.cores == 0 || (a.cores & b.cores) != 0 {
            return false;
        }
        if (a.global && !a.sync) || (b.global && !b.sync) {
            return false;
        }
        let foot = |cores: u64| {
            self.bank_foot
                .iter()
                .enumerate()
                .filter(|&(c, _)| cores & (1 << c) != 0)
                .fold(0u64, |acc, (_, f)| acc | f)
        };
        // Cores beyond the table are unknown: refuse to refine.
        let known = if self.bank_foot.len() >= 64 {
            u64::MAX
        } else {
            (1u64 << self.bank_foot.len()) - 1
        };
        if a.cores & !known != 0 || b.cores & !known != 0 {
            return false;
        }
        if foot(a.cores) & foot(b.cores) != 0 {
            return false;
        }
        a.cores & !self.pure == 0 || b.cores & !self.pure == 0
    }

    /// The refined dependence relation: dynamic
    /// [`EvDesc::conflicts`] minus statically-proven-independent pairs.
    pub fn conflicts(&self, a: &EvDesc, b: &EvDesc) -> bool {
        a.conflicts(b) && !self.refines(a, b)
    }
}

/// A tie-break policy driven by the engine at every nondeterministic
/// pick point (see module docs). `pick` receives the same-cycle
/// candidates in FIFO (schedule) order — index 0 is what the default
/// deterministic engine would fire — plus a fingerprint of the current
/// architectural state. `observe` is called for **every** dispatched
/// event, including forced single-candidate fronts, so a partial-order
/// reducer can maintain its sleep sets.
pub trait Scheduler {
    /// Choose which of `options` fires first; returns an index into
    /// `options` (out-of-range picks are clamped to the last candidate).
    fn pick(&mut self, at: Cycle, options: &[EvDesc], state_fp: u64) -> usize;

    /// Notification that `ev` was just dispatched at cycle `at`.
    fn observe(&mut self, at: Cycle, ev: &EvDesc) {
        let _ = (at, ev);
    }
}

/// How a scheduled run terminated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunEnd {
    /// Every guest thread exited.
    Done,
    /// Event queue drained with live threads: the listed cores wait for
    /// events (wake-ups) that can never arrive.
    Deadlock { stuck: Vec<usize> },
    /// The configured cycle budget ran out ([`crate::Runner::max_cycles`]).
    CycleLimit { at: Cycle },
}

impl RunEnd {
    pub fn is_done(&self) -> bool {
        matches!(self, RunEnd::Done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(cores: u64, bank: Option<usize>, global: bool) -> EvDesc {
        EvDesc {
            class: EvClass::Net,
            cores,
            line: bank.map(|b| LineAddr(b as u64)),
            bank,
            global,
            sync: false,
            id: 0,
        }
    }

    #[test]
    fn dependence_relation() {
        // Disjoint cores, different banks, nothing global: independent.
        assert!(!desc(0b01, Some(0), false).conflicts(&desc(0b10, Some(1), false)));
        // Overlapping cores are dependent.
        assert!(desc(0b01, None, false).conflicts(&desc(0b11, None, false)));
        // Same bank is dependent even with disjoint cores.
        assert!(desc(0b01, Some(1), false).conflicts(&desc(0b10, Some(1), false)));
        // Global events are dependent with everything.
        assert!(desc(0b01, None, true).conflicts(&desc(0b10, Some(1), false)));
    }

    #[test]
    fn static_refinement() {
        // Core 0 on bank 0, core 1 on bank 1, both pure.
        let t = StaticIndependence {
            bank_foot: vec![0b01, 0b10],
            pure: 0b11,
        };
        let sync = |cores: u64| EvDesc {
            sync: true,
            ..desc(cores, None, true)
        };
        // A commit-class global of core 0 is refined against core 1...
        assert!(t.refines(&sync(0b01), &desc(0b10, Some(1), false)));
        assert!(!t.conflicts(&sync(0b01), &desc(0b10, Some(1), false)));
        // ... but the dynamic relation alone says they conflict.
        assert!(sync(0b01).conflicts(&desc(0b10, Some(1), false)));
        // Barrier-class globals (sync = false) are never refined.
        assert!(!t.refines(&desc(0b01, None, true), &desc(0b10, None, false)));
        // Overlapping cores are never refined.
        assert!(!t.refines(&sync(0b01), &desc(0b01, None, false)));
        // Unattributable events (cores == 0) are never refined.
        assert!(!t.refines(&desc(0, None, true), &desc(0b10, None, false)));
        // Cores beyond the table are never refined.
        assert!(!t.refines(&sync(0b100), &desc(0b10, None, false)));
        // Shared static bank footprints block refinement.
        let shared = StaticIndependence {
            bank_foot: vec![0b01, 0b01],
            pure: 0b11,
        };
        assert!(!shared.refines(&sync(0b01), &desc(0b10, None, false)));
        // Two impure cores block refinement even with disjoint banks.
        let impure = StaticIndependence {
            bank_foot: vec![0b01, 0b10],
            pure: 0,
        };
        assert!(!impure.refines(&sync(0b01), &desc(0b10, None, false)));
        // One pure side is enough.
        let half = StaticIndependence {
            bank_foot: vec![0b01, 0b10],
            pure: 0b10,
        };
        assert!(half.refines(&sync(0b01), &desc(0b10, None, false)));
    }

    #[test]
    fn labels_render() {
        let d = desc(0b10, Some(3), false);
        assert_eq!(d.label(), "Net:c1:L3");
        let g = desc(0, None, true);
        assert_eq!(g.label(), "Net:g");
    }
}
