//! Scheduler seam: the engine's nondeterministic pick points, exposed.
//!
//! The discrete-event queue orders events by `(cycle, seq)`; the FIFO
//! tie-break among same-cycle events is the **only** nondeterminism in a
//! simulation (guests compute in zero simulated time and every latency is
//! deterministic). A [`Scheduler`] intercepts exactly those tie-breaks:
//! whenever two or more events are pending at the minimum cycle, the
//! engine describes each candidate as an [`EvDesc`] and asks the
//! scheduler which one fires first. Replaying the same decision sequence
//! reproduces the run bit-for-bit; enumerating alternative decisions
//! enumerates every schedule the model can exhibit.
//!
//! [`EvDesc`] also carries a conservative *footprint* (cores touched,
//! cache line, home LLC bank, or "global") from which
//! [`EvDesc::conflicts`] derives the dependence relation used by the
//! `tmverify` partial-order reduction: two events are independent only if
//! their footprints are provably disjoint, so commuting independent
//! events can never change the resulting state.

use sim_core::types::{Cycle, LineAddr};

/// Coarse event category (mirrors the engine's private event enum).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvClass {
    /// Rendezvous: receive the core's next operation.
    Recv,
    /// Deliver a previously scheduled guest response.
    Respond,
    /// A NoC message arrives at the memory subsystem.
    Net,
    /// A memory-subsystem notification lands at a core controller.
    Notice,
    /// Recovery-mechanism retry (RetryLater pause elapsed).
    Retry,
    /// Wake-up safety-net timeout.
    ParkTimeout,
}

/// One schedulable event, described by its footprint.
///
/// `cores` is a bitmask of the core controllers the event can read or
/// write; `line`/`bank` locate the cache line (and its home LLC bank —
/// events on different lines of the same bank still couple through tag
/// LRU and the blocking directory, so dependence is keyed per bank);
/// `global` marks events that touch state shared beyond one bank (HLA
/// arbiter, overflow signatures, commit/abort wake-up fan-out, barrier).
#[derive(Clone, Debug)]
pub struct EvDesc {
    pub class: EvClass,
    /// Bitmask of cores whose controller state the event touches.
    pub cores: u64,
    /// Cache line accessed, if the event is line-addressed.
    pub line: Option<LineAddr>,
    /// Home LLC bank of `line` (same-bank events are dependent).
    pub bank: Option<usize>,
    /// Touches globally shared state; dependent with everything.
    pub global: bool,
    /// Stable identity hash (class + payload, volatile tags excluded);
    /// used to match the "same" event across replays of one prefix.
    pub id: u64,
}

impl EvDesc {
    /// Conservative dependence: `true` unless the footprints are provably
    /// disjoint. Independent events commute — executing them in either
    /// order reaches the same state — so a schedule explorer only needs
    /// to branch on dependent pairs.
    pub fn conflicts(&self, other: &EvDesc) -> bool {
        self.global
            || other.global
            || (self.cores & other.cores) != 0
            || (self.bank.is_some() && self.bank == other.bank)
    }

    /// Compact human-readable label for witness/debug rendering.
    pub fn label(&self) -> String {
        let mut s = format!("{:?}", self.class);
        if self.cores != 0 && self.cores != u64::MAX {
            s.push_str(":c");
            for c in 0..64 {
                if self.cores & (1 << c) != 0 {
                    s.push_str(&c.to_string());
                }
            }
        }
        if let Some(l) = self.line {
            s.push_str(&format!(":L{}", l.0));
        }
        if self.global {
            s.push_str(":g");
        }
        s
    }
}

/// A tie-break policy driven by the engine at every nondeterministic
/// pick point (see module docs). `pick` receives the same-cycle
/// candidates in FIFO (schedule) order — index 0 is what the default
/// deterministic engine would fire — plus a fingerprint of the current
/// architectural state. `observe` is called for **every** dispatched
/// event, including forced single-candidate fronts, so a partial-order
/// reducer can maintain its sleep sets.
pub trait Scheduler {
    /// Choose which of `options` fires first; returns an index into
    /// `options` (out-of-range picks are clamped to the last candidate).
    fn pick(&mut self, at: Cycle, options: &[EvDesc], state_fp: u64) -> usize;

    /// Notification that `ev` was just dispatched at cycle `at`.
    fn observe(&mut self, at: Cycle, ev: &EvDesc) {
        let _ = (at, ev);
    }
}

/// How a scheduled run terminated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunEnd {
    /// Every guest thread exited.
    Done,
    /// Event queue drained with live threads: the listed cores wait for
    /// events (wake-ups) that can never arrive.
    Deadlock { stuck: Vec<usize> },
    /// The configured cycle budget ran out ([`crate::Runner::max_cycles`]).
    CycleLimit { at: Cycle },
}

impl RunEnd {
    pub fn is_done(&self) -> bool {
        matches!(self, RunEnd::Done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(cores: u64, bank: Option<usize>, global: bool) -> EvDesc {
        EvDesc {
            class: EvClass::Net,
            cores,
            line: bank.map(|b| LineAddr(b as u64)),
            bank,
            global,
            id: 0,
        }
    }

    #[test]
    fn dependence_relation() {
        // Disjoint cores, different banks, nothing global: independent.
        assert!(!desc(0b01, Some(0), false).conflicts(&desc(0b10, Some(1), false)));
        // Overlapping cores are dependent.
        assert!(desc(0b01, None, false).conflicts(&desc(0b11, None, false)));
        // Same bank is dependent even with disjoint cores.
        assert!(desc(0b01, Some(1), false).conflicts(&desc(0b10, Some(1), false)));
        // Global events are dependent with everything.
        assert!(desc(0b01, None, true).conflicts(&desc(0b10, Some(1), false)));
    }

    #[test]
    fn labels_render() {
        let d = desc(0b10, Some(3), false);
        assert_eq!(d.label(), "Net:c1:L3");
        let g = desc(0, None, true);
        assert_eq!(g.label(), "Net:g");
    }
}
