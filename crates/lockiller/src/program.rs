//! The workload interface: a `Program` is a multi-threaded guest
//! application (e.g., one STAMP benchmark with fixed inputs).

use crate::exec::{GuestEnv, GuestExec};
use crate::flatmem::{FlatMem, SetupCtx};
use crate::guest::GuestCtx;

/// A guest workload.
///
/// Lifecycle: [`Program::setup`] builds the shared data structures in
/// simulated memory (un-timed, before the region of interest), then
/// [`Program::run`] executes on every simulated thread concurrently, and
/// finally [`Program::validate`] checks the resulting memory image —
/// the serializability oracle used by the integration tests.
pub trait Program: Sync {
    fn name(&self) -> &str;

    /// Build inputs and shared structures; record their addresses in
    /// `self` for the thread bodies to use.
    fn setup(&mut self, s: &mut SetupCtx, threads: usize);

    /// Thread body; `ctx.tid` identifies the simulated thread.
    fn run(&self, ctx: &mut GuestCtx);

    /// Construct an in-process resumable guest for one simulated thread
    /// (the VM backend, [`crate::Backend::Vm`]). Returning `None` (the
    /// default) means the program only supports the OS-thread backend;
    /// programs whose kernels compile to `guestvm` bytecode return a VM
    /// here and become runnable on either backend with bit-identical
    /// results. Called after [`Program::setup`], once per thread.
    fn guest_exec(&self, env: GuestEnv) -> Option<Box<dyn GuestExec + '_>> {
        let _ = env;
        None
    }

    /// Post-run invariant check on the final memory image.
    fn validate(&self, mem: &FlatMem) -> Result<(), String> {
        let _ = mem;
        Ok(())
    }
}
