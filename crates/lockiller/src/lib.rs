//! # LockillerTM — the paper's contribution
//!
//! This crate assembles the CMP simulator substrate (`sim-core`, `noc`,
//! `coherence`) into a full transactional-memory system and implements the
//! three LockillerTM mechanisms plus every baseline the paper evaluates:
//!
//! - the **recovery mechanism** with insts-based dynamic priority
//!   (§III-A): configured through [`SystemKind`], executed by the
//!   coherence layer's NACK/reject/wake-up machinery;
//! - the **HTMLock mechanism** (§III-B): the `hlbegin`/`hlend` runtime in
//!   [`guest`], lock transactions with globally-highest priority, and LLC
//!   overflow signatures;
//! - the **switchingMode mechanism** (§III-C): transparent proactive
//!   switching to STL mode on capacity overflow, driven by the engine.
//!
//! [`system::SystemKind`] names the nine Table-II systems; [`runner::Runner`]
//! executes a [`program::Program`] (a multi-threaded guest workload) on a
//! chosen system and returns a [`runner::RunOutput`] (statistics, final
//! memory image, optional event trace).
//!
//! Guest programs execute behind the [`exec::GuestExec`] seam: either on
//! OS threads in strict rendezvous lockstep with the single-threaded
//! discrete-event engine ([`exec::Backend::Threads`]), or as in-process
//! resumable state machines (`guestvm`, [`exec::Backend::Vm`]). Both
//! backends are bit-identical by construction — every simulation is
//! bit-deterministic either way.

pub mod engine;
pub mod exec;
pub mod flatmem;
pub mod guest;
pub mod program;
pub mod runner;
pub mod sched;
pub mod system;
pub mod trace;

pub use exec::{Backend, GuestEnv, GuestExec, GuestSnapshot, ThreadGuest};
pub use flatmem::{FlatMem, SetupCtx};
pub use guest::{Abort, GuestCtx, GuestOp, GuestResp, TTest, TxCtx};
pub use program::Program;
pub use runner::{RunOutput, Runner};
pub use sched::{EvClass, EvDesc, RunEnd, Scheduler, StaticIndependence};
pub use system::SystemKind;
pub use trace::{render_timeline, Trace, TraceEvent, TraceKind, DEFAULT_TRACE_CAP};
