//! The nine evaluated systems of Table II, mapped to policy knobs.

use sim_core::config::{PolicyConfig, PriorityKind, RejectAction};

/// Table II of the paper: every evaluated concurrency-control system.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Coarse-grained locking with the same granularity as transactions.
    Cgl,
    /// Best-effort HTM with requester-win conflict resolution and a
    /// lock-subscribing fallback path.
    Baseline,
    /// LosaTM without the false-sharing and capacity-overflow
    /// optimizations: recovery-style NACKs with progression-based
    /// priority and wake-up.
    LosaTmSafu,
    /// Baseline + recovery + self-abort on reject + insts-based priority.
    LockillerRai,
    /// Baseline + recovery + retry-after-pause on reject + insts-based
    /// priority.
    LockillerRri,
    /// Baseline + recovery + wait-for-wakeup on reject + insts-based
    /// priority.
    LockillerRwi,
    /// Baseline + recovery + wake-up + HTMLock, without insts-based
    /// priority (FCFS arbitration among HTM transactions).
    LockillerRwl,
    /// LockillerTM-RWI + HTMLock.
    LockillerRwil,
    /// The full system: RWI + HTMLock + switchingMode.
    LockillerTm,
}

impl SystemKind {
    /// All systems, in Table II order.
    pub const ALL: [SystemKind; 9] = [
        SystemKind::Cgl,
        SystemKind::Baseline,
        SystemKind::LosaTmSafu,
        SystemKind::LockillerRai,
        SystemKind::LockillerRri,
        SystemKind::LockillerRwi,
        SystemKind::LockillerRwl,
        SystemKind::LockillerRwil,
        SystemKind::LockillerTm,
    ];

    /// The HTM systems compared in Fig. 8 (recovery variants + baseline).
    pub const FIG8: [SystemKind; 4] = [
        SystemKind::Baseline,
        SystemKind::LockillerRai,
        SystemKind::LockillerRri,
        SystemKind::LockillerRwi,
    ];

    pub fn name(self) -> &'static str {
        match self {
            SystemKind::Cgl => "CGL",
            SystemKind::Baseline => "Baseline",
            SystemKind::LosaTmSafu => "LosaTM-SAFU",
            SystemKind::LockillerRai => "LockillerTM-RAI",
            SystemKind::LockillerRri => "LockillerTM-RRI",
            SystemKind::LockillerRwi => "LockillerTM-RWI",
            SystemKind::LockillerRwl => "LockillerTM-RWL",
            SystemKind::LockillerRwil => "LockillerTM-RWIL",
            SystemKind::LockillerTm => "LockillerTM",
        }
    }

    pub fn from_name(name: &str) -> Option<SystemKind> {
        SystemKind::ALL
            .iter()
            .copied()
            .find(|s| s.name().eq_ignore_ascii_case(name))
    }

    /// The policy configuration implementing this system.
    pub fn policy(self) -> PolicyConfig {
        let base = PolicyConfig::default();
        match self {
            SystemKind::Cgl => PolicyConfig {
                coarse_grained_lock: true,
                ..base
            },
            SystemKind::Baseline => PolicyConfig {
                recovery: false,
                priority: PriorityKind::RequesterWins,
                ..base
            },
            SystemKind::LosaTmSafu => PolicyConfig {
                recovery: true,
                priority: PriorityKind::ProgressionBased,
                reject_action: RejectAction::WaitWakeup,
                ..base
            },
            SystemKind::LockillerRai => PolicyConfig {
                recovery: true,
                priority: PriorityKind::InstsBased,
                reject_action: RejectAction::SelfAbort,
                ..base
            },
            SystemKind::LockillerRri => PolicyConfig {
                recovery: true,
                priority: PriorityKind::InstsBased,
                reject_action: RejectAction::RetryLater,
                ..base
            },
            SystemKind::LockillerRwi => PolicyConfig {
                recovery: true,
                priority: PriorityKind::InstsBased,
                reject_action: RejectAction::WaitWakeup,
                ..base
            },
            SystemKind::LockillerRwl => PolicyConfig {
                recovery: true,
                priority: PriorityKind::Fcfs,
                reject_action: RejectAction::WaitWakeup,
                htmlock: true,
                ..base
            },
            SystemKind::LockillerRwil => PolicyConfig {
                recovery: true,
                priority: PriorityKind::InstsBased,
                reject_action: RejectAction::WaitWakeup,
                htmlock: true,
                ..base
            },
            SystemKind::LockillerTm => PolicyConfig {
                recovery: true,
                priority: PriorityKind::InstsBased,
                reject_action: RejectAction::WaitWakeup,
                htmlock: true,
                switching_mode: true,
                ..base
            },
        }
    }

    pub fn uses_htm(self) -> bool {
        self != SystemKind::Cgl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_systems_as_in_table2() {
        assert_eq!(SystemKind::ALL.len(), 9);
    }

    #[test]
    fn names_roundtrip() {
        for s in SystemKind::ALL {
            assert_eq!(SystemKind::from_name(s.name()), Some(s));
        }
        assert_eq!(
            SystemKind::from_name("lockillertm"),
            Some(SystemKind::LockillerTm)
        );
        assert_eq!(SystemKind::from_name("nope"), None);
    }

    #[test]
    fn policy_feature_ladder() {
        assert!(SystemKind::Cgl.policy().coarse_grained_lock);
        let b = SystemKind::Baseline.policy();
        assert!(!b.recovery && !b.htmlock && !b.switching_mode);
        let rwi = SystemKind::LockillerRwi.policy();
        assert!(rwi.recovery && !rwi.htmlock);
        assert_eq!(rwi.priority, PriorityKind::InstsBased);
        assert_eq!(rwi.reject_action, RejectAction::WaitWakeup);
        let rwil = SystemKind::LockillerRwil.policy();
        assert!(rwil.recovery && rwil.htmlock && !rwil.switching_mode);
        let full = SystemKind::LockillerTm.policy();
        assert!(full.recovery && full.htmlock && full.switching_mode);
        let rwl = SystemKind::LockillerRwl.policy();
        assert_eq!(rwl.priority, PriorityKind::Fcfs);
        assert!(rwl.htmlock);
        let losa = SystemKind::LosaTmSafu.policy();
        assert_eq!(losa.priority, PriorityKind::ProgressionBased);
        assert!(!losa.htmlock);
    }

    #[test]
    fn rai_rri_differ_only_in_reject_action() {
        let rai = SystemKind::LockillerRai.policy();
        let rri = SystemKind::LockillerRri.policy();
        assert_eq!(rai.reject_action, RejectAction::SelfAbort);
        assert_eq!(rri.reject_action, RejectAction::RetryLater);
        assert_eq!(rai.priority, rri.priority);
        assert_eq!(rai.htmlock, rri.htmlock);
    }
}
