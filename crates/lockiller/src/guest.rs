//! Guest-program API and the transactional runtime (Listings 1 and 2 of
//! the paper).
//!
//! Under the thread backend ([`crate::exec::Backend::Threads`]) a guest
//! program runs on its own OS thread and talks to the engine in strict
//! rendezvous: every operation blocks until the engine delivers the
//! response at the correct simulated cycle. (The VM backend replays the
//! exact same protocol as an in-process state machine — `guestvm`
//! mirrors [`GuestCtx::critical`] op for op.) [`GuestCtx::critical`]
//! implements `lock_acquire_elided`/`lock_release_elided`:
//!
//! - **CGL**: plain spin-lock critical section, no speculation;
//! - **Baseline**: `xbegin`, subscribe to the fallback lock (a
//!   transactional load of the lock word — acquiring the lock then aborts
//!   every subscriber), `_xabort` if the lock is held, bounded retries,
//!   then a fallback critical section under the lock;
//! - **HTMLock systems**: the subscription is removed (the paper's grey
//!   modification to Listing 1); the fallback executes `hlbegin`/`hlend`
//!   as a TL lock transaction running concurrently with HTM transactions;
//! - **switchingMode**: the engine may switch a running transaction to STL
//!   transparently; `lock_release_elided` dispatches on `_ttest`
//!   (Listing 2) and skips the lock release for STL finishes.
//!
//! Transaction bodies receive a [`TxCtx`] whose memory operations return
//! `Result<_, Abort>`: an abort unwinds the body via `?` and the retry
//! loop re-executes it, exactly like hardware rolling back to the xbegin.

use sim_core::rng::SimRng;
use sim_core::stats::AbortCause;
use sim_core::types::Addr;
use std::sync::mpsc::{Receiver, Sender};

/// `_ttest` return values (Listing 2 dispatch), namespaced so new modes
/// can be added without colliding with downstream constants.
pub struct TTest;

impl TTest {
    /// `_ttest` return value in STL mode (agreed constant, §III-C).
    pub const STL: u64 = 0x0FFF_FFFF;
    /// `_ttest` return value in TL mode.
    pub const TL: u64 = 0x1FFF_FFFF;
    /// `_ttest` return value inside a plain HTM transaction (nesting
    /// depth 1).
    pub const HTM: u64 = 1;
}

/// Operations a guest sends to the engine.
///
/// Non-exhaustive: the VM backend may grow ops without breaking
/// downstream crates; match with a wildcard arm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GuestOp {
    /// `n` non-memory instructions.
    Compute(u64),
    Load(Addr),
    Store(Addr, u64),
    /// Compare-and-swap; responds with the previous value.
    Cas(Addr, u64, u64),
    /// `xbegin`.
    TxBegin,
    /// `xend` (the engine dispatches to `hlend` semantics when the
    /// transaction switched to STL — see `lock_release_elided`).
    TxCommit,
    /// `_xabort` — explicit abort (lock observed taken at subscription).
    TxAbortUser,
    /// `_ttest`.
    TTest,
    /// `hlbegin` — enter TL mode (caller holds the software lock).
    HlBegin,
    /// `hlend` — leave TL/STL mode.
    HlEnd,
    /// Phase annotations for the execution-time breakdown.
    SpinBegin,
    SpinEnd,
    FallbackBegin,
    FallbackEnd,
    /// First-touch notification from the allocator (demand paging).
    PageTouch(u64),
    Barrier,
    Exit,
}

/// Engine responses.
///
/// Non-exhaustive for the same reason as [`GuestOp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum GuestResp {
    Done,
    Value(u64),
    /// The transaction aborted; control must unwind to the retry loop.
    Aborted(AbortCause),
}

/// Abort token propagated by `?` through transaction bodies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Abort {
    pub cause: AbortCause,
}

/// Policy knobs the guest-side runtime needs (copied from the system's
/// `PolicyConfig` at spawn).
#[derive(Clone, Copy, Debug)]
pub struct GuestPolicy {
    pub coarse_grained_lock: bool,
    pub htmlock: bool,
    pub max_retries: u32,
    pub fallback_on_capacity: bool,
}

/// The guest side of the rendezvous channel plus the runtime state.
pub struct GuestCtx {
    pub tid: usize,
    pub threads: usize,
    pub rng: SimRng,
    policy: GuestPolicy,
    lock_addr: Addr,
    tx: Sender<GuestOp>,
    rx: Receiver<GuestResp>,
    in_critical: bool,
}

impl GuestCtx {
    pub fn new(
        tid: usize,
        threads: usize,
        rng: SimRng,
        policy: GuestPolicy,
        lock_addr: Addr,
        tx: Sender<GuestOp>,
        rx: Receiver<GuestResp>,
    ) -> GuestCtx {
        GuestCtx {
            tid,
            threads,
            rng,
            policy,
            lock_addr,
            tx,
            rx,
            in_critical: false,
        }
    }

    fn op(&self, o: GuestOp) -> GuestResp {
        self.tx.send(o).expect("engine hung up");
        self.rx.recv().expect("engine hung up")
    }

    fn op_infallible(&self, o: GuestOp) -> GuestResp {
        match self.op(o) {
            GuestResp::Aborted(c) => panic!("unexpected abort ({c:?}) outside a transaction"),
            r => r,
        }
    }

    // ---------------- non-transactional primitives ----------------

    pub fn load(&self, a: Addr) -> u64 {
        match self.op_infallible(GuestOp::Load(a)) {
            GuestResp::Value(v) => v,
            r => panic!("bad response to load: {r:?}"),
        }
    }

    pub fn store(&self, a: Addr, v: u64) {
        self.op_infallible(GuestOp::Store(a, v));
    }

    pub fn cas(&self, a: Addr, expected: u64, new: u64) -> u64 {
        match self.op_infallible(GuestOp::Cas(a, expected, new)) {
            GuestResp::Value(v) => v,
            r => panic!("bad response to cas: {r:?}"),
        }
    }

    pub fn compute(&self, n: u64) {
        self.op_infallible(GuestOp::Compute(n));
    }

    pub fn page_touch(&self, page: u64) -> Result<(), Abort> {
        match self.op(GuestOp::PageTouch(page)) {
            GuestResp::Aborted(c) => Err(Abort { cause: c }),
            _ => Ok(()),
        }
    }

    pub fn barrier(&self) {
        self.op_infallible(GuestOp::Barrier);
    }

    /// Must be the last call of `thread_main` (the runner also sends it on
    /// return as a safety net — it is idempotent engine-side).
    pub fn exit(&self) {
        let _ = self.tx.send(GuestOp::Exit);
    }

    // ---------------- spin lock (test-and-test-and-set) ----------------

    fn spin_acquire(&self) {
        self.op_infallible(GuestOp::SpinBegin);
        loop {
            if self.load(self.lock_addr) == 0 && self.cas(self.lock_addr, 0, 1) == 0 {
                break;
            }
            self.compute(16);
        }
        self.op_infallible(GuestOp::SpinEnd);
    }

    fn spin_until_free(&self) {
        self.op_infallible(GuestOp::SpinBegin);
        while self.load(self.lock_addr) != 0 {
            self.compute(16);
        }
        self.op_infallible(GuestOp::SpinEnd);
    }

    fn release_lock(&self) {
        self.store(self.lock_addr, 0);
    }

    // ---------------- the elided-lock critical section ----------------

    /// Execute `f` as a critical section under the active system's
    /// concurrency control. Shared state touched by `f` must live in
    /// simulated memory (so aborts roll it back); host-side locals must be
    /// re-initialized inside the closure.
    pub fn critical<T>(&mut self, mut f: impl FnMut(&mut TxCtx) -> Result<T, Abort>) -> T {
        assert!(
            !self.in_critical,
            "nested critical sections are not supported"
        );
        self.in_critical = true;
        let v = self.critical_inner(&mut f);
        self.in_critical = false;
        v
    }

    fn critical_inner<T>(&mut self, f: &mut impl FnMut(&mut TxCtx) -> Result<T, Abort>) -> T {
        if self.policy.coarse_grained_lock {
            self.spin_acquire();
            self.op_infallible(GuestOp::FallbackBegin);
            let v = run_infallible(self, f);
            self.op_infallible(GuestOp::FallbackEnd);
            self.release_lock();
            return v;
        }

        // lock_acquire_elided (Listing 1).
        let mut retries = self.policy.max_retries;
        while retries > 0 {
            match self.try_htm(f) {
                Ok(v) => return v,
                Err(HtmFail::LockTaken) => {
                    // Subscribed lock observed held: wait until free, then
                    // burn one retry (Listing 1 decrements per iteration).
                    self.spin_until_free();
                    retries -= 1;
                }
                Err(HtmFail::Abort(cause)) => {
                    let hopeless = matches!(cause, AbortCause::Of | AbortCause::Fault);
                    if hopeless && self.policy.fallback_on_capacity {
                        retries = 0;
                    } else {
                        retries -= 1;
                    }
                }
            }
        }

        // Fallback path: lock_acquire + (hlbegin | plain critical section).
        self.spin_acquire();
        if self.policy.htmlock {
            self.op_infallible(GuestOp::HlBegin);
            let v = run_infallible(self, f);
            self.op_infallible(GuestOp::HlEnd);
            self.release_lock();
            v
        } else {
            self.op_infallible(GuestOp::FallbackBegin);
            let v = run_infallible(self, f);
            self.op_infallible(GuestOp::FallbackEnd);
            self.release_lock();
            v
        }
    }

    /// One speculative attempt: xbegin, optional lock subscription, body,
    /// then `lock_release_elided` (Listing 2) with its ttest dispatch.
    fn try_htm<T>(
        &mut self,
        f: &mut impl FnMut(&mut TxCtx) -> Result<T, Abort>,
    ) -> Result<T, HtmFail> {
        if let GuestResp::Aborted(c) = self.op(GuestOp::TxBegin) {
            return Err(HtmFail::Abort(c));
        }

        let body = (|| -> Result<T, Abort> {
            if !self.policy.htmlock {
                // Baseline subscription: the fallback lock joins the read
                // set; abort explicitly if it is already held.
                let lock_addr = self.lock_addr;
                let mut tx = TxCtx { g: self };
                if tx.load(lock_addr)? != 0 {
                    match tx.g.op(GuestOp::TxAbortUser) {
                        GuestResp::Aborted(_) => {
                            return Err(Abort {
                                cause: AbortCause::Mutex,
                            })
                        }
                        r => panic!("xabort must abort, got {r:?}"),
                    }
                }
            }
            let mut tx = TxCtx { g: self };
            f(&mut tx)
        })();

        match body {
            Err(a) => {
                if a.cause == AbortCause::Mutex && !self.policy.htmlock {
                    Err(HtmFail::LockTaken)
                } else {
                    Err(HtmFail::Abort(a.cause))
                }
            }
            Ok(v) => {
                // lock_release_elided (Listing 2): dispatch on _ttest.
                match self.op(GuestOp::TTest) {
                    GuestResp::Aborted(c) => Err(HtmFail::Abort(c)),
                    GuestResp::Value(TTest::STL) => {
                        // Switched transaction: hlend, no lock to release.
                        self.op_infallible(GuestOp::HlEnd);
                        Ok(v)
                    }
                    GuestResp::Value(_) => match self.op(GuestOp::TxCommit) {
                        GuestResp::Aborted(c) => Err(HtmFail::Abort(c)),
                        _ => Ok(v),
                    },
                    r => panic!("bad ttest response: {r:?}"),
                }
            }
        }
    }
}

/// Why a speculative attempt failed.
enum HtmFail {
    LockTaken,
    Abort(AbortCause),
}

/// Run the body on the non-speculative path, where aborts cannot occur.
fn run_infallible<T>(g: &mut GuestCtx, f: &mut impl FnMut(&mut TxCtx) -> Result<T, Abort>) -> T {
    let mut tx = TxCtx { g };
    match f(&mut tx) {
        Ok(v) => v,
        Err(a) => panic!("abort on the non-speculative path: {a:?}"),
    }
}

/// Memory operations inside a critical section. On the speculative path
/// these can fail with [`Abort`]; on lock/CGL paths they never do, so the
/// same body code serves every system.
pub struct TxCtx<'a> {
    pub g: &'a mut GuestCtx,
}

impl TxCtx<'_> {
    pub fn load(&mut self, a: Addr) -> Result<u64, Abort> {
        match self.g.op(GuestOp::Load(a)) {
            GuestResp::Value(v) => Ok(v),
            GuestResp::Aborted(c) => Err(Abort { cause: c }),
            r => panic!("bad response to tx load: {r:?}"),
        }
    }

    pub fn store(&mut self, a: Addr, v: u64) -> Result<(), Abort> {
        match self.g.op(GuestOp::Store(a, v)) {
            GuestResp::Aborted(c) => Err(Abort { cause: c }),
            _ => Ok(()),
        }
    }

    pub fn compute(&mut self, n: u64) -> Result<(), Abort> {
        match self.g.op(GuestOp::Compute(n)) {
            GuestResp::Aborted(c) => Err(Abort { cause: c }),
            _ => Ok(()),
        }
    }

    pub fn page_touch(&mut self, page: u64) -> Result<(), Abort> {
        self.g.page_touch(page)
    }

    /// Thread id of the owning guest (handy for per-thread structures).
    pub fn tid(&self) -> usize {
        self.g.tid
    }
}
