//! The discrete-event engine: owns the event queue, the memory subsystem,
//! the value layer, and one controller per simulated core; drives guest
//! threads in rendezvous lockstep.
//!
//! ## Event kinds
//!
//! - `Recv(core)` — rendezvous point: blocking-receive the core's next
//!   operation (the guest computes in zero simulated time);
//! - `Respond(core, resp)` — deliver a response scheduled earlier (e.g.,
//!   the end of a `Compute`, a commit penalty, an abort penalty);
//! - `Net(msg)` — a NoC message arrives at the memory subsystem;
//! - `Notice(n)` — a memory-subsystem notification (completion, reject,
//!   protocol abort, wake-up, HLA result);
//! - `Retry(core, seq)` / `ParkTimeout(core, seq)` — recovery-mechanism
//!   requester-side actions (RetryLater pause, wake-up safety net).
//!
//! ## Execution-time accounting
//!
//! Cycles are attributed per core to the paper's breakdown categories at
//! every response delivery; speculative cycles accumulate in a pending
//! bucket resolved to `htm` / `aborted` / `switchLock` when the
//! transaction's fate is known (Figs. 9 and 11).

use crate::exec::GuestExec;
use crate::flatmem::{FlatMem, WriteBuffer};
use crate::guest::{GuestOp, GuestResp, TTest};
use crate::sched::{EvClass, EvDesc, RunEnd, Scheduler};
use crate::trace::{Trace, TraceKind};
use coherence::memsys::{AccessKind, AccessResult, CoreNotice, MemSystem};
use coherence::msg::{NetMsg, TxMode};
use sim_core::config::{PriorityKind, RejectAction, SystemConfig};
use sim_core::event::EventQueue;
use sim_core::fxhash::{FxHashSet, FxHasher};
use sim_core::latency::{TxnClass, TxnLifecycle};
use sim_core::obs::{Metric, MetricSpec, ObsEvent, ObsHandle, SpanEnd, SpanKind, Track};
use sim_core::prof::{HostProf, ProfPhase, ProfReport};
use sim_core::stats::{AbortCause, Phase, PhaseTracker, RunStats};
use sim_core::types::{Addr, CoreId, Cycle};
use std::hash::{Hash, Hasher};

/// Decay origin for the `prio_decay` seeded bug: large enough that the
/// inverted priorities stay positive and below the lock-priority
/// sentinel for any realistic transaction length.
const PRIO_DECAY_BASE: u64 = 1 << 20;

/// Metric registrations owned by the engine: core-occupancy gauges and
/// the cumulative outcome counters sampled every observability tick.
pub fn obs_metric_specs() -> Vec<MetricSpec> {
    vec![
        MetricSpec::new(
            Metric::TxRunning,
            "cores",
            "cores in a speculative transaction",
        ),
        MetricSpec::new(
            Metric::Parked,
            "cores",
            "cores parked by the recovery mechanism",
        ),
        MetricSpec::new(Metric::LockHeld, "cores", "cores in lock/fallback sections"),
        MetricSpec::new(Metric::Commits, "txns", "cumulative speculative commits"),
        MetricSpec::new(Metric::Aborts, "txns", "cumulative aborts, all causes"),
        MetricSpec::new(
            Metric::Fallbacks,
            "txns",
            "cumulative fallback-path entries",
        ),
        MetricSpec::new(
            Metric::EventsProcessed,
            "events",
            "cumulative discrete events dispatched by the engine",
        ),
        MetricSpec::new(
            Metric::EventQueueDepth,
            "events",
            "instantaneous engine event-queue depth",
        ),
    ]
}

#[derive(Clone, Debug)]
enum Ev {
    Recv(CoreId),
    Respond(CoreId, GuestResp),
    Net(NetMsg),
    Notice(CoreNotice),
    Retry(CoreId, u64),
    ParkTimeout(CoreId, u64),
}

/// Per-core controller state.
struct Ctl<'g> {
    /// The resumable guest driven at this core's `Recv` rendezvous
    /// points; `None` after [`Engine::release_guests`].
    exec: Option<Box<dyn GuestExec + 'g>>,
    /// Response delivered by [`Engine::respond`] but not yet handed to
    /// the guest — consumed by the next `resume` at the rendezvous
    /// point, exactly where the old channel send/recv pair met.
    pending_resp: Option<GuestResp>,
    tracker: PhaseTracker,
    phase: Phase,
    /// Cycles currently accumulate into the speculative pending bucket.
    spec: bool,
    last_attr: Cycle,
    /// Inside a speculative attempt (including after an STL switch, until
    /// hlend).
    in_tx: bool,
    is_stl: bool,
    /// Per-attempt transaction id stamped on checked-mode access events
    /// (0 = not inside any atomic section). Every speculative attempt,
    /// TL/STL lock transaction, and fallback critical section gets a
    /// fresh id; retries of the same static transaction get new ids.
    cur_txn: u64,
    tx_insts: u64,
    tx_refs: u64,
    tx_begin_at: Cycle,
    switch_tried: bool,
    /// Protocol abort arrived while an op had a scheduled response; the
    /// abort is delivered in its place.
    doomed: Option<AbortCause>,
    /// A response event is in flight for this core.
    respond_scheduled: bool,
    /// Memory op awaiting coherence completion / park / retry.
    cur_op: Option<GuestOp>,
    /// Op received while a protocol abort notice was still in flight;
    /// consumed (answered with the abort) when the notice lands.
    deferred_op: Option<GuestOp>,
    parked: Option<u64>,
    /// A wake-up that arrived before its reject (shorter NoC route);
    /// consumed instead of parking when the reject lands.
    wakeup_banked: bool,
    /// Next guest op, pre-received at a scheduler pick point so the
    /// candidate `Recv` event can be described with a precise footprint
    /// (the guest computes in zero simulated time, so its op is fixed
    /// the moment the previous response is delivered — pulling it early
    /// cannot change the simulation).
    staged_op: Option<GuestOp>,
    /// Rolling hash of every response delivered to this guest: a
    /// deterministic guest's position and local state are a pure
    /// function of its response history, so folding this into the state
    /// fingerprint makes engine-state equality imply guest-state
    /// equality (see `state_fingerprint`).
    resp_hash: u64,
    switch_pending: bool,
    tl_pending: bool,
    /// Resolve the pending speculative bucket into this phase at the next
    /// response delivery.
    resolve: Option<Phase>,
    /// Switch to this phase after the next response delivery.
    phase_after: Option<Phase>,
    finished: bool,
}

impl Ctl<'_> {
    fn new() -> Self {
        Ctl {
            exec: None,
            pending_resp: None,
            tracker: PhaseTracker::default(),
            phase: Phase::NonTran,
            spec: false,
            last_attr: 0,
            in_tx: false,
            is_stl: false,
            cur_txn: 0,
            tx_insts: 0,
            tx_refs: 0,
            tx_begin_at: 0,
            switch_tried: false,
            doomed: None,
            respond_scheduled: false,
            cur_op: None,
            deferred_op: None,
            parked: None,
            wakeup_banked: false,
            staged_op: None,
            resp_hash: 0,
            switch_pending: false,
            tl_pending: false,
            resolve: None,
            phase_after: None,
            finished: false,
        }
    }
}

/// The engine. Construct, [`Engine::register`] each guest executor,
/// then [`Engine::run`] to completion and [`Engine::into_stats`].
///
/// The lifetime `'g` bounds the registered [`GuestExec`]s (a VM guest
/// borrows its program's kernel; the thread backend is `'static`).
pub struct Engine<'g> {
    cfg: SystemConfig,
    ms: MemSystem,
    q: EventQueue<Ev>,
    pub mem: FlatMem,
    bufs: Vec<WriteBuffer>,
    ctl: Vec<Ctl<'g>>,
    /// Per-core lifecycle trackers for latency accounting. Deliberately
    /// outside [`Ctl`] and the state fingerprint: lifecycle stamps are
    /// volatile accounting and must not perturb tmverify's state dedup.
    life: Vec<TxnLifecycle>,
    touched_pages: FxHashSet<u64>,
    barrier_waiting: Vec<CoreId>,
    threads: usize,
    done_count: usize,
    seq: u64,
    txn_counter: u64,
    stats: RunStats,
    end_time: Cycle,
    pub trace: Trace,
    /// Observability sink: `None` (the default) is the uninstrumented
    /// fast path — every emission site is one `is_some()` branch, and
    /// sinks are write-only, so the simulation is bit-identical either
    /// way.
    obs: Option<ObsHandle>,
    next_sample: Cycle,
    /// Host-side self-profiler ([`Engine::enable_prof`]): `None` (the
    /// default) is the unprofiled fast path — every scope site is one
    /// `is_some()` branch, mirroring `obs`. The profiler only reads the
    /// host clock and allocation counters; nothing it does feeds back
    /// into the simulation, so cycles, stats, traces, and fingerprints
    /// are byte-identical with it on or off.
    prof: Option<HostProf>,
    /// Programmatic cycle budget ([`Engine::set_max_cycles`]): exceeding
    /// it ends the run with [`RunEnd::CycleLimit`] instead of panicking
    /// (the `LOCKILLER_MAX_CYCLES` env watchdog still panics).
    max_cycles: Option<Cycle>,
    /// `LOCKILLER_TRACE` debug logging, read once at construction: the
    /// per-op/per-response log lines format eagerly, so the check must
    /// be a field load, not an env lookup in the event loop.
    dbg_trace: bool,
    /// `LOCKILLER_WATCH` watched address (`Some(0)` if unparseable),
    /// read once for the same reason as `dbg_trace`.
    dbg_watch: Option<u64>,
    /// True while [`Engine::run_with`] is driven by a [`Scheduler`].
    /// Only the scheduler's pick points read [`Engine::state_fingerprint`],
    /// so the per-response `resp_hash` fold in `respond` is skipped on
    /// plain runs — the `tmprof` stamp phase showed the hash as the
    /// fold's only cost on the VM backend, where responses dominate.
    fingerprinting: bool,
}

impl<'g> Engine<'g> {
    pub fn new(
        cfg: SystemConfig,
        mem: FlatMem,
        threads: usize,
        mutex_addr: Addr,
        mapped_pages: FxHashSet<u64>,
    ) -> Engine<'g> {
        assert!(threads >= 1 && threads <= cfg.num_cores);
        let mut ms = MemSystem::new(cfg.clone());
        ms.set_mutex_line(mutex_addr.line());
        let touched_pages = mapped_pages;
        Engine {
            ms,
            q: EventQueue::new(),
            mem,
            bufs: (0..threads).map(|_| WriteBuffer::default()).collect(),
            ctl: (0..threads).map(|_| Ctl::new()).collect(),
            life: (0..threads).map(|_| TxnLifecycle::default()).collect(),
            touched_pages,
            barrier_waiting: Vec::new(),
            threads,
            done_count: 0,
            seq: 0,
            txn_counter: 0,
            stats: RunStats::new(threads),
            end_time: 0,
            trace: Trace::default(),
            obs: None,
            next_sample: 0,
            prof: None,
            max_cycles: None,
            dbg_trace: std::env::var_os("LOCKILLER_TRACE").is_some(),
            dbg_watch: std::env::var("LOCKILLER_WATCH")
                .ok()
                .map(|w| w.parse().unwrap_or(0)),
            fingerprinting: false,
            cfg,
        }
    }

    /// Set a cycle budget: a run that exceeds it returns
    /// [`RunEnd::CycleLimit`] (used by the schedule explorer to bound
    /// divergent replays instead of hanging).
    pub fn set_max_cycles(&mut self, limit: Cycle) {
        self.max_cycles = Some(limit);
    }

    /// Attach an observability sink (span tracing + periodic sampling).
    /// Also arms conflict-edge recording in the memory system so the
    /// sink receives forensics events; recording is write-only and never
    /// feeds back into protocol decisions.
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.obs = Some(obs);
        self.ms.set_record_conflicts(true);
    }

    /// Start host-side self-profiling: the root `run` scope opens now,
    /// and the hot loop attributes host time / allocations to phase
    /// scopes until [`Engine::take_prof`].
    pub fn enable_prof(&mut self) {
        self.prof = Some(HostProf::start());
    }

    /// Close the profile and return its report (`None` if
    /// [`Engine::enable_prof`] was never called).
    pub fn take_prof(&mut self) -> Option<ProfReport> {
        self.prof.take().map(HostProf::report)
    }

    #[inline]
    fn prof_enter(&mut self, ph: ProfPhase) {
        if let Some(p) = self.prof.as_mut() {
            p.enter(ph);
        }
    }

    #[inline]
    fn prof_exit(&mut self) {
        if let Some(p) = self.prof.as_mut() {
            p.exit();
        }
    }

    /// Dispatch phase for an event kind (per-`Ev`-kind host attribution).
    fn phase_of(ev: &Ev) -> ProfPhase {
        match ev {
            Ev::Recv(_) => ProfPhase::EvRecv,
            Ev::Respond(..) => ProfPhase::EvRespond,
            Ev::Net(_) => ProfPhase::EvNet,
            Ev::Notice(_) => ProfPhase::EvNotice,
            Ev::Retry(..) => ProfPhase::EvRetry,
            Ev::ParkTimeout(..) => ProfPhase::EvParkTimeout,
        }
    }

    // ---------------- observability emission ----------------

    #[inline]
    fn obs_begin(&self, cycle: Cycle, core: CoreId, kind: SpanKind) {
        if let Some(o) = &self.obs {
            let track = if kind == SpanKind::HlaArb {
                Track::Llc
            } else {
                Track::Core(core)
            };
            o.emit(ObsEvent::SpanBegin {
                cycle,
                track,
                kind,
                core,
            });
        }
    }

    #[inline]
    fn obs_end(&self, cycle: Cycle, core: CoreId, kind: SpanKind, end: SpanEnd) {
        if let Some(o) = &self.obs {
            let track = if kind == SpanKind::HlaArb {
                Track::Llc
            } else {
                Track::Core(core)
            };
            o.emit(ObsEvent::SpanEnd {
                cycle,
                track,
                kind,
                core,
                end,
            });
        }
    }

    /// Emit one sample row: engine occupancy gauges and outcome counters,
    /// then the memory system's bank/NoC metrics. Pure observation.
    fn emit_samples(&self, at: Cycle) {
        let Some(o) = &self.obs else { return };
        let (htm, lock, fallback) = self.ms.mode_counts();
        let parked = self.ctl.iter().filter(|c| c.parked.is_some()).count() as u64;
        let mut out: Vec<(Metric, u64)> = vec![
            (Metric::TxRunning, htm),
            (Metric::Parked, parked),
            (Metric::LockHeld, lock + fallback),
            (Metric::Commits, self.stats.commits),
            (Metric::Aborts, self.stats.total_aborts()),
            (Metric::Fallbacks, self.stats.fallbacks),
            (Metric::EventsProcessed, self.stats.events_processed),
            (Metric::EventQueueDepth, self.q.len() as u64),
        ];
        self.ms.obs_sample(&mut out);
        for (metric, value) in out {
            o.emit(ObsEvent::Sample {
                cycle: at,
                metric,
                value,
            });
        }
    }

    /// Attach the resumable guest driven at `core`'s rendezvous points.
    pub fn register(&mut self, core: CoreId, exec: Box<dyn GuestExec + 'g>) {
        self.ctl[core].exec = Some(exec);
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Stamp a fresh atomic-section id on `core` (checked mode only —
    /// ids are only consumed by access events, which are gated).
    fn begin_txn(&mut self, core: CoreId) {
        if self.cfg.check.enabled {
            self.txn_counter += 1;
            self.ctl[core].cur_txn = self.txn_counter;
        }
    }

    // ---------------- phase accounting ----------------

    fn attr(&mut self, core: CoreId, upto: Cycle) {
        let c = &mut self.ctl[core];
        debug_assert!(upto >= c.last_attr);
        let d = upto - c.last_attr;
        if d > 0 {
            if c.spec {
                c.tracker.add_pending_spec(d);
            } else {
                c.tracker.add(c.phase, d);
            }
            c.last_attr = upto;
        } else {
            c.last_attr = upto;
        }
    }

    fn set_phase(&mut self, core: CoreId, now: Cycle, phase: Phase) {
        self.attr(core, now);
        self.ctl[core].phase = phase;
    }

    // ---------------- responses ----------------

    fn respond(&mut self, core: CoreId, now: Cycle, resp: GuestResp) {
        if self.dbg_trace {
            self.trace(now, core, &format!("resp {resp:?}"));
        }
        self.prof_enter(ProfPhase::Stamp);
        self.attr(core, now);
        if self.fingerprinting {
            // Fold the delivered response into the core's history hash
            // (see `state_fingerprint`). Values only, not cycles: timing
            // differences already show in the queue fingerprint. Hashed
            // structurally (no formatting): this runs on every response.
            // Scheduler-driven runs only — nothing else reads the hash,
            // and it costs a hasher per response on the hot path.
            let mut h = FxHasher::default();
            (self.ctl[core].resp_hash, resp).hash(&mut h);
            self.ctl[core].resp_hash = h.finish();
        }
        if let Some(res) = self.ctl[core].resolve.take() {
            self.ctl[core].tracker.resolve_spec(res);
            self.ctl[core].spec = false;
        }
        if let Some(p) = self.ctl[core].phase_after.take() {
            self.ctl[core].phase = p;
        }
        self.prof_exit();
        // Stash the response for the matching `Recv` rendezvous: the
        // guest only resumes when that event (or a pick-point staging of
        // it) fires, so delivery timing is identical to the old channel
        // send here + blocking receive there.
        self.ctl[core].pending_resp = Some(resp);
        self.q.schedule_at(now, Ev::Recv(core));
    }

    fn schedule_respond(&mut self, core: CoreId, at: Cycle, resp: GuestResp) {
        self.ctl[core].respond_scheduled = true;
        self.q.schedule_at(at, Ev::Respond(core, resp));
    }

    // ---------------- memory-subsystem output plumbing ----------------

    fn drain_ms(&mut self) {
        let (msgs, notices) = self.ms.take_outputs();
        for (at, m) in msgs {
            self.q.schedule_at(at, Ev::Net(m));
        }
        for (at, n) in notices {
            self.q.schedule_at(at, Ev::Notice(n));
        }
        if self.cfg.check.enabled {
            for (at, ev) in self.ms.take_proto_events() {
                let (from, kind) = match ev {
                    coherence::memsys::ProtoEvent::NackSent { from, to, line } => {
                        (from, TraceKind::NackSent { to, line })
                    }
                    coherence::memsys::ProtoEvent::WakeSent { from, to } => {
                        (from, TraceKind::WakeSent { to })
                    }
                };
                self.trace.record(at, from, kind);
            }
        }
        if let Some(o) = &self.obs {
            for (cycle, edge) in self.ms.take_conflicts() {
                o.emit(ObsEvent::Conflict { cycle, edge });
            }
        }
    }

    // ---------------- main loop ----------------

    /// Run until every guest thread has exited; panics on deadlock or a
    /// blown cycle budget (callers that want to observe those outcomes
    /// use [`Engine::run_with`]).
    pub fn run(&mut self) {
        match self.run_with(None) {
            RunEnd::Done => {}
            RunEnd::Deadlock { stuck } => {
                panic!("deadlock: no events but threads alive (cores {stuck:?} unfinished)")
            }
            RunEnd::CycleLimit { at } => {
                panic!("cycle budget exhausted at cycle {at}")
            }
        }
    }

    /// Run until every guest thread has exited, the event queue drains
    /// with live threads (deadlock), or the cycle budget runs out. When
    /// a [`Scheduler`] is supplied it resolves every same-cycle FIFO
    /// tie-break (the simulation's only nondeterminism; see
    /// [`crate::sched`]).
    ///
    /// On a non-[`RunEnd::Done`] outcome guest threads are still blocked
    /// on their channels; the caller must call
    /// [`Engine::release_guests`] (after marking the run abandoned) so
    /// they unblock instead of hanging, and absorb their panics.
    pub fn run_with(&mut self, mut sched: Option<&mut dyn Scheduler>) -> RunEnd {
        let env_max: Cycle = std::env::var("LOCKILLER_MAX_CYCLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(Cycle::MAX);
        // Read once: an env lookup per dispatched event is measurable on
        // the in-process VM backend (the loop runs millions of times).
        let env_check = std::env::var_os("LOCKILLER_CHECK").is_some();
        self.fingerprinting = sched.is_some();
        for c in 0..self.threads {
            self.q.schedule_at(0, Ev::Recv(c));
        }
        while self.done_count < self.threads {
            self.prof_enter(ProfPhase::Dequeue);
            let popped = match sched.as_deref_mut() {
                Some(s) => self.pick_next(s),
                None => self.q.pop(),
            };
            self.prof_exit();
            let Some((t, ev)) = popped else {
                self.end_time = self.q.now().max(self.end_time);
                let stuck: Vec<usize> = (0..self.threads)
                    .filter(|&c| !self.ctl[c].finished)
                    .collect();
                return RunEnd::Deadlock { stuck };
            };
            // Simulator self-metrics: dispatched-event count and queue
            // high-water (the popped event itself counts toward depth).
            self.stats.events_processed += 1;
            let depth = self.q.len() as u64 + 1;
            if depth > self.stats.event_queue_peak {
                self.stats.event_queue_peak = depth;
            }
            if let Some(p) = self.prof.as_mut() {
                p.note_event(depth);
            }
            if let Some(every) = self.obs.as_ref().map(ObsHandle::sample_every) {
                if t >= self.next_sample {
                    self.prof_enter(ProfPhase::ObsSample);
                    while t >= self.next_sample {
                        let at = self.next_sample;
                        self.emit_samples(at);
                        self.next_sample += every;
                    }
                    self.prof_exit();
                }
            }
            if t > env_max {
                self.dump_state(t);
                panic!("watchdog: simulation exceeded {env_max} cycles");
            }
            if self.max_cycles.is_some_and(|limit| t > limit) {
                self.end_time = self.q.now().max(self.end_time);
                return RunEnd::CycleLimit { at: t };
            }
            if env_check {
                if let Err(e) = self.ms.check_swmr() {
                    panic!("at cycle {t} before {ev:?}: {e}");
                }
            }
            // Live SWMR surface for checked mode: record the first
            // violation instead of panicking, so the checker can report
            // it with the rest of the run's evidence.
            if self.cfg.check.enabled && self.stats.swmr_violation.is_none() {
                if let Err(e) = self.ms.check_swmr() {
                    self.stats.swmr_violation = Some(format!("at cycle {t}: {e}"));
                }
            }
            self.prof_enter(Self::phase_of(&ev));
            self.dispatch(t, ev);
            self.prof_exit();
        }
        self.end_time = self.q.now().max(self.end_time);
        if let Some(o) = &self.obs {
            self.emit_samples(self.end_time);
            o.finish(self.end_time);
        }
        RunEnd::Done
    }

    /// Dispatch one popped event (the body of the hot loop, split out so
    /// the profiler brackets exactly one event regardless of which arm's
    /// early return fires).
    #[inline]
    fn dispatch(&mut self, t: Cycle, ev: Ev) {
        match ev {
            Ev::Recv(c) => {
                let op = if let Some(op) = self.ctl[c].staged_op.take() {
                    op
                } else {
                    self.recv_op(t, c)
                };
                self.handle_op(t, c, op);
            }
            Ev::Respond(c, resp) => {
                self.ctl[c].respond_scheduled = false;
                if self.ctl[c].in_tx && !matches!(resp, GuestResp::Aborted(_)) {
                    if let Some(cause) = self.ctl[c].doomed.take() {
                        self.deliver_abort(t, c, cause);
                        return;
                    }
                }
                self.respond(c, t, resp);
            }
            Ev::Net(m) => {
                self.prof_enter(ProfPhase::Coherence);
                self.ms.handle_msg(t, m);
                self.drain_ms();
                self.prof_exit();
            }
            Ev::Notice(n) => self.handle_notice(t, n),
            Ev::Retry(c, seq) => {
                if self.ctl[c].parked == Some(seq) {
                    self.obs_end(t, c, SpanKind::Park, SpanEnd::Retried);
                    self.ctl[c].parked = None;
                    self.life[c].unpark(t, &mut self.stats.latency);
                    self.reissue(t, c);
                }
            }
            Ev::ParkTimeout(c, seq) => {
                if self.ctl[c].parked == Some(seq) {
                    self.stats.wakeup_timeouts += 1;
                    if self.cfg.check.enabled {
                        self.trace.record(t, c, TraceKind::WakeTimeout);
                    }
                    self.obs_end(t, c, SpanKind::Park, SpanEnd::Timeout);
                    self.ctl[c].parked = None;
                    self.life[c].unpark(t, &mut self.stats.latency);
                    self.reissue(t, c);
                }
            }
        }
    }

    /// Resume `core`'s guest with its pending response (a synthetic
    /// `Done` kick on the very first rendezvous — see
    /// [`crate::exec::GuestExec`]) and take its next op. The guest
    /// computes in zero simulated time, on the engine's own thread.
    fn recv_op(&mut self, _t: Cycle, c: CoreId) -> GuestOp {
        self.prof_enter(ProfPhase::GuestResume);
        let ctl = &mut self.ctl[c];
        let resp = ctl.pending_resp.take().unwrap_or(GuestResp::Done);
        let op = ctl.exec.as_mut().expect("core not registered").resume(resp);
        self.prof_exit();
        op
    }

    /// Drop every guest executor. Thread-backend guests blocked in
    /// `recv` (or a later `send`) get a channel error and panic out of
    /// their run closure; the runner marks the run abandoned *first* and
    /// then absorbs those panics. Call on every non-[`RunEnd::Done`]
    /// outcome before joining any guest threads.
    pub fn release_guests(&mut self) {
        for c in &mut self.ctl {
            c.exec = None;
            c.pending_resp = None;
        }
    }

    // ---------------- scheduler seam ----------------

    /// Pop the next event, letting `s` resolve same-cycle ties. Recv
    /// candidates get their guest op pre-received ("staged") so the
    /// descriptor carries the op's precise footprint; the op content
    /// cannot depend on the tie-break (guests run in zero simulated
    /// time), so staging never changes the simulation.
    fn pick_next(&mut self, s: &mut dyn Scheduler) -> Option<(Cycle, Ev)> {
        match self.q.front_len() {
            0 => None,
            1 => {
                let (t, ev) = self.q.pop()?;
                if let Ev::Recv(c) = ev {
                    self.stage_op(c);
                }
                let d = self.describe(&ev);
                s.observe(t, &d);
                Some((t, ev))
            }
            _ => {
                let front = self.q.front_snapshot();
                for ev in &front {
                    if let Ev::Recv(c) = ev {
                        self.stage_op(*c);
                    }
                }
                let descs: Vec<EvDesc> = front.iter().map(|e| self.describe(e)).collect();
                let at = self.q.peek_time().expect("front is non-empty");
                self.prof_enter(ProfPhase::SchedPick);
                let fp = self.state_fingerprint();
                let idx = s.pick(at, &descs, fp).min(descs.len() - 1);
                self.prof_exit();
                let (t, ev) = self.q.pop_nth_front(idx).expect("front is non-empty");
                s.observe(t, &descs[idx]);
                Some((t, ev))
            }
        }
    }

    /// Pre-receive `core`'s next op into the staging slot (idempotent).
    /// A staged `Recv` candidate has already had its response delivered
    /// (its `Respond` dispatched earlier), so resuming the guest here is
    /// the same rendezvous the event itself would perform.
    fn stage_op(&mut self, core: CoreId) {
        if self.ctl[core].staged_op.is_some() {
            return;
        }
        let op = self.recv_op(0, core);
        self.ctl[core].staged_op = Some(op);
    }

    /// Describe an event's footprint for the dependence relation. The
    /// mapping errs conservative: anything that can touch state shared
    /// beyond one core + one LLC bank is marked `global`.
    fn describe(&self, ev: &Ev) -> EvDesc {
        let bank_of = |line: sim_core::types::LineAddr| (line.0 as usize) % self.cfg.num_banks();
        let mut d = match ev {
            Ev::Recv(c) => {
                let mut d = EvDesc {
                    class: EvClass::Recv,
                    cores: 1 << c,
                    line: None,
                    bank: None,
                    global: false,
                    sync: false,
                    id: 0,
                };
                match self.ctl[*c].staged_op {
                    Some(GuestOp::Load(a) | GuestOp::Store(a, _) | GuestOp::Cas(a, ..)) => {
                        d.line = Some(a.line());
                        d.bank = Some(bank_of(a.line()));
                    }
                    Some(GuestOp::Compute(_) | GuestOp::TTest | GuestOp::TxBegin)
                    | Some(GuestOp::SpinBegin | GuestOp::SpinEnd) => {}
                    // Commit/abort/lock transitions fan wake-ups and HLA
                    // traffic out to arbitrary cores — global, but the
                    // shared state is pure sync machinery, so a static
                    // analysis may refine it (see `EvDesc::sync`).
                    Some(
                        GuestOp::TxCommit
                        | GuestOp::TxAbortUser
                        | GuestOp::HlBegin
                        | GuestOp::HlEnd
                        | GuestOp::FallbackBegin
                        | GuestOp::FallbackEnd,
                    ) => {
                        d.global = true;
                        d.sync = true;
                    }
                    // Barrier and page faults touch engine-global state
                    // beyond sync machinery. None (unstaged) only happens
                    // on the unscheduled path.
                    _ => d.global = true,
                }
                d
            }
            Ev::Respond(c, _) => EvDesc {
                class: EvClass::Respond,
                cores: 1 << c,
                line: None,
                bank: None,
                global: false,
                sync: false,
                id: 0,
            },
            Ev::Net(m) => self.describe_net(m),
            Ev::Notice(n) => {
                let (core, global) = match n {
                    CoreNotice::AccessDone { core }
                    | CoreNotice::AccessRejected { core, .. }
                    | CoreNotice::TxAborted { core, .. }
                    | CoreNotice::Wakeup { core } => (*core, false),
                    // HlaResult triggers enter_lock / finish_hla, which
                    // release or acquire globally shared lock state.
                    CoreNotice::HlaResult { core, .. } => (*core, true),
                };
                EvDesc {
                    class: EvClass::Notice,
                    cores: 1 << core,
                    line: None,
                    bank: None,
                    global,
                    // The only global notice is HlaResult: lock-mode sync
                    // machinery, refinable against proven-pure cores.
                    sync: global,
                    id: 0,
                }
            }
            Ev::Retry(c, _) | Ev::ParkTimeout(c, _) => {
                // A firing retry reissues the parked access.
                let line = match self.ctl[*c].cur_op {
                    Some(GuestOp::Load(a) | GuestOp::Store(a, _) | GuestOp::Cas(a, ..)) => {
                        Some(a.line())
                    }
                    _ => None,
                };
                EvDesc {
                    class: if matches!(ev, Ev::Retry(..)) {
                        EvClass::Retry
                    } else {
                        EvClass::ParkTimeout
                    },
                    cores: 1 << c,
                    line,
                    bank: line.map(bank_of),
                    global: false,
                    sync: false,
                    id: 0,
                }
            }
        };
        d.id = self.event_id(ev);
        d
    }

    fn describe_net(&self, m: &NetMsg) -> EvDesc {
        let bank_of = |line: sim_core::types::LineAddr| (line.0 as usize) % self.cfg.num_banks();
        let mut d = EvDesc {
            class: EvClass::Net,
            cores: 0,
            line: None,
            bank: None,
            global: false,
            sync: false,
            id: 0,
        };
        match m {
            NetMsg::Req(req) => {
                d.cores = 1 << req.core;
                d.line = Some(req.line);
            }
            NetMsg::PutM { core, line }
            | NetMsg::PutClean { core, line }
            | NetMsg::SpecWb { core, line }
            | NetMsg::Unblock { core, line } => {
                d.cores = 1 << core;
                d.line = Some(*line);
            }
            // Overflow signatures are consulted by every HTM request.
            NetMsg::SigAdd { line, .. } => {
                d.line = Some(*line);
                d.global = true;
            }
            NetMsg::FwdGetS { to, req } | NetMsg::Inv { to, req, .. } => {
                d.cores = (1 << to) | (1 << req.core);
                d.line = Some(req.line);
            }
            NetMsg::ProbeRsp { from, req, .. } => {
                d.cores = (1 << from) | (1 << req.core);
                d.line = Some(req.line);
            }
            NetMsg::Grant { to, line, .. }
            | NetMsg::RspReject { to, line, .. }
            | NetMsg::DirectData { to, line, .. } => {
                d.cores = 1 << to;
                d.line = Some(*line);
            }
            NetMsg::Wakeup { to } => d.cores = 1 << to,
            // HLA arbiter traffic serializes at one global point — sync
            // machinery only, so refinable against proven-pure cores.
            NetMsg::HlaReq { core, .. } | NetMsg::HlaRel { core } => {
                d.cores = 1 << core;
                d.global = true;
                d.sync = true;
            }
            NetMsg::HlaRsp { to, .. } => {
                d.cores = 1 << to;
                d.global = true;
                d.sync = true;
            }
        }
        d.bank = d.line.map(bank_of);
        d
    }

    /// Stable identity hash for an event: used by the explorer to match
    /// "the same" event across replays of one decision prefix. Park/
    /// retry sequence tags are volatile (they depend on unrelated
    /// scheduling) and are normalized to whether they match the core's
    /// current park.
    fn event_id(&self, ev: &Ev) -> u64 {
        let mut h = FxHasher::default();
        match ev {
            Ev::Recv(c) => ("recv", c, format!("{:?}", self.ctl[*c].staged_op)).hash(&mut h),
            Ev::Respond(c, resp) => ("respond", c, format!("{resp:?}")).hash(&mut h),
            Ev::Net(m) => ("net", format!("{m:?}")).hash(&mut h),
            Ev::Notice(n) => ("notice", format!("{n:?}")).hash(&mut h),
            Ev::Retry(c, seq) => ("retry", c, self.ctl[*c].parked == Some(*seq)).hash(&mut h),
            Ev::ParkTimeout(c, seq) => ("park", c, self.ctl[*c].parked == Some(*seq)).hash(&mut h),
        }
        h.finish()
    }

    /// FxHash fingerprint of the architectural state: per-core controller
    /// state (volatile accounting excluded), write buffers, flat memory,
    /// the pending event queue (volatile sequence tags normalized), and
    /// the memory subsystem. Guest-thread state is covered by each
    /// core's response-history hash (`resp_hash`): a deterministic
    /// guest's position is a pure function of the responses it has seen.
    ///
    /// Used by the schedule explorer to merge states reached by
    /// different interleavings; a collision-free fingerprint match
    /// implies identical continuations.
    pub fn state_fingerprint(&self) -> u64 {
        let mut h = FxHasher::default();
        for (i, c) in self.ctl.iter().enumerate() {
            (i, c.in_tx, c.is_stl, c.tx_insts, c.tx_refs).hash(&mut h);
            (
                c.switch_tried,
                c.respond_scheduled,
                c.parked.is_some(),
                c.wakeup_banked,
                c.switch_pending,
                c.tl_pending,
                c.finished,
                c.resp_hash,
            )
                .hash(&mut h);
            format!(
                "{:?}|{:?}|{:?}|{:?}",
                c.doomed, c.cur_op, c.deferred_op, c.staged_op
            )
            .hash(&mut h);
        }
        for (i, b) in self.bufs.iter().enumerate() {
            (i, b.len()).hash(&mut h);
            b.for_each_sorted(|a, v| (a.0, v).hash(&mut h));
        }
        self.mem.digest().hash(&mut h);
        self.barrier_waiting.hash(&mut h);
        self.done_count.hash(&mut h);
        // Pages are monotone; XOR keeps the fold order-independent.
        let mut pages = 0u64;
        for p in &self.touched_pages {
            let mut ph = FxHasher::default();
            p.hash(&mut ph);
            pages ^= ph.finish();
        }
        pages.hash(&mut h);
        self.q.for_each_sorted(|at, ev| {
            at.hash(&mut h);
            self.event_id(ev).hash(&mut h);
        });
        self.ms.fingerprint(&mut h);
        h.finish()
    }

    /// Consume the engine, producing run statistics.
    pub fn into_stats(mut self) -> (RunStats, FlatMem) {
        self.stats.cycles = self.end_time;
        for c in 0..self.threads {
            let tracker = std::mem::take(&mut self.ctl[c].tracker);
            self.stats.merge_core(c, &tracker);
        }
        self.stats.rejects = self.ms.stats.rejects;
        self.stats.sig_rejects = self.ms.stats.sig_rejects;
        self.stats.wakeups = self.ms.stats.wakeups_sent;
        let noc = self.ms.noc_stats();
        self.stats.messages = noc.messages;
        self.stats.hops = noc.hops;
        self.stats.flit_hops = noc.flit_hops;
        self.stats.noc_queue_cycles = noc.queue_cycles;
        self.stats.noc_link_busy = noc.link_busy.clone();
        let banks = self.ms.bank_stats();
        self.stats.bank_hits = banks.hits;
        self.stats.bank_misses = banks.misses;
        self.stats.bank_queued = banks.queued;
        self.stats.bank_queue_peak = banks.queue_peak;
        self.stats.trace_dropped = self.trace.dropped();
        self.stats.threads = self.threads;
        (self.stats, self.mem)
    }

    /// Diagnostic dump used by the cycle watchdog.
    fn dump_state(&self, t: Cycle) {
        eprintln!("=== engine state at cycle {t} ===");
        for (c, ctl) in self.ctl.iter().enumerate() {
            eprintln!(
                "core {c}: finished={} in_tx={} stl={} parked={:?} cur_op={:?} deferred={:?} doomed={:?} resp_sched={} tl_pend={} sw_pend={} ms_mode={:?} ms_pending={}",
                ctl.finished,
                ctl.in_tx,
                ctl.is_stl,
                ctl.parked,
                ctl.cur_op,
                ctl.deferred_op,
                ctl.doomed,
                ctl.respond_scheduled,
                ctl.tl_pending,
                ctl.switch_pending,
                self.ms.core_mode(c),
                self.ms.has_pending(c),
            );
        }
        eprintln!(
            "stats: commits={} aborts={:?} rejects={} sig_rejects={} wakeups={} timeouts={} fallbacks={} switches={}/{}",
            self.stats.commits,
            self.stats.aborts,
            self.ms.stats.rejects,
            self.ms.stats.sig_rejects,
            self.ms.stats.wakeups_sent,
            self.stats.wakeup_timeouts,
            self.stats.fallbacks,
            self.stats.switches_granted,
            self.stats.switches_denied,
        );
    }

    // ---------------- op handling ----------------

    fn update_prio(&mut self, core: CoreId) {
        let p = match self.cfg.policy.priority {
            PriorityKind::InstsBased => self.ctl[core].tx_insts,
            PriorityKind::ProgressionBased => self.ctl[core].tx_refs,
            PriorityKind::RequesterWins | PriorityKind::Fcfs => 0,
        };
        // Seeded bug for checker validation: priorities decay as the
        // transaction makes progress instead of accumulating, violating
        // the monotonicity the recovery argument depends on.
        let p = if self.cfg.check.fault.prio_decay {
            PRIO_DECAY_BASE.saturating_sub(p)
        } else {
            p
        };
        self.ms.set_prio(core, p);
    }

    fn trace(&self, t: Cycle, core: CoreId, what: &str) {
        if self.dbg_trace {
            eprintln!("[{t}] c{core} {what}");
        }
    }

    fn handle_op(&mut self, t: Cycle, core: CoreId, op: GuestOp) {
        if self.dbg_trace {
            self.trace(
                t,
                core,
                &format!(
                    "op {op:?} in_tx={} doomed={:?}",
                    self.ctl[core].in_tx, self.ctl[core].doomed
                ),
            );
        }
        // A protocol abort that arrived between ops is delivered on the
        // next transactional interaction. If the memory subsystem has
        // already aborted us but its notice has not landed yet, defer the
        // op and answer it with the abort when the notice arrives.
        if self.ctl[core].in_tx {
            if let Some(cause) = self.ctl[core].doomed.take() {
                self.deliver_abort(t, core, cause);
                return;
            }
            if self.ms.core_mode(core) == TxMode::None {
                self.ctl[core].deferred_op = Some(op);
                return;
            }
        }
        match op {
            GuestOp::Compute(n) => {
                if self.ctl[core].in_tx {
                    self.ctl[core].tx_insts += n;
                    self.update_prio(core);
                }
                self.schedule_respond(core, t + n, GuestResp::Done);
            }
            GuestOp::Load(_) | GuestOp::Store(..) | GuestOp::Cas(..) => {
                self.start_access(t, core, op, false);
            }
            GuestOp::TxBegin => {
                self.trace.record(t, core, TraceKind::TxBegin);
                self.obs_begin(t, core, SpanKind::Txn);
                self.begin_txn(core);
                self.life[core].begin_attempt(t);
                self.stats.tx_starts += 1;
                self.ms.begin_htm(core, 0);
                let c = &mut self.ctl[core];
                c.in_tx = true;
                c.is_stl = false;
                c.switch_tried = false;
                c.tx_insts = 0;
                c.tx_refs = 0;
                c.tx_begin_at = t;
                self.update_prio(core);
                self.attr(core, t);
                self.ctl[core].spec = true;
                self.schedule_respond(core, t + 2, GuestResp::Done);
            }
            GuestOp::TTest => {
                let v = match self.ms.core_mode(core) {
                    TxMode::LockStl => TTest::STL,
                    TxMode::LockTl => TTest::TL,
                    _ => TTest::HTM,
                };
                self.schedule_respond(core, t + 1, GuestResp::Value(v));
            }
            GuestOp::TxCommit => {
                if self.dbg_watch.is_some() {
                    eprintln!("[{t}] COMMIT c{core} buf={} entries", self.bufs[core].len());
                }
                debug_assert!(!self.ctl[core].is_stl, "STL commits via hlend");
                let (rs, ws) = self.ms.tx_set_sizes(core);
                self.stats.rs_lines_sum += rs;
                self.stats.ws_lines_sum += ws;
                self.stats.tx_cycles_sum += t - self.ctl[core].tx_begin_at;
                self.ms.commit_htm(t, core);
                self.drain_ms();
                let buf = &mut self.bufs[core];
                buf.commit(&mut self.mem);
                self.trace.record(t, core, TraceKind::Commit);
                self.obs_end(t, core, SpanKind::Txn, SpanEnd::Commit);
                self.stats.commits += 1;
                self.life[core].commit(t, TxnClass::HtmCommit, &mut self.stats.latency);
                self.ctl[core].in_tx = false;
                self.ctl[core].cur_txn = 0;
                self.ctl[core].resolve = Some(Phase::Htm);
                self.ctl[core].phase_after = Some(Phase::NonTran);
                self.schedule_respond(core, t + self.cfg.commit_penalty, GuestResp::Done);
            }
            GuestOp::TxAbortUser => {
                // _xabort: lock observed taken at subscription time.
                self.do_abort(t, core, AbortCause::Mutex);
            }
            GuestOp::HlBegin => {
                if self.cfg.policy.switching_mode {
                    // TL entry also needs the LLC's authorization when
                    // switchingMode may have an STL holder (§III-C).
                    // The lifecycle opens now so arbitration wait counts
                    // toward the lock-commit latency; the hold interval
                    // opens at the grant.
                    self.life[core].begin_attempt(t);
                    self.ctl[core].tl_pending = true;
                    self.obs_begin(t, core, SpanKind::HlaArb);
                    self.ms.hla_request(t, core, false);
                    self.drain_ms();
                } else {
                    self.ms.enter_lock(core, false);
                    self.trace.record(t, core, TraceKind::HlBegin);
                    self.obs_begin(t, core, SpanKind::TlLock);
                    self.begin_txn(core);
                    self.life[core].begin_hold(t);
                    self.stats.fallbacks += 1;
                    self.set_phase(core, t, Phase::Lock);
                    self.schedule_respond(core, t + 2, GuestResp::Done);
                }
            }
            GuestOp::HlEnd => {
                self.trace.record(t, core, TraceKind::HlEnd);
                if self.ctl[core].is_stl {
                    self.obs_end(t, core, SpanKind::StlLock, SpanEnd::Commit);
                } else {
                    self.obs_end(t, core, SpanKind::TlLock, SpanEnd::End);
                }
                if self.ctl[core].is_stl {
                    let (rs, ws) = self.ms.tx_set_sizes(core);
                    self.stats.rs_lines_sum += rs;
                    self.stats.ws_lines_sum += ws;
                    self.stats.tx_cycles_sum += t - self.ctl[core].tx_begin_at;
                    self.ms.exit_lock(t, core);
                    self.drain_ms();
                    self.stats.commits += 1;
                    self.stats.stl_commits += 1;
                    self.life[core].commit(t, TxnClass::StlCommit, &mut self.stats.latency);
                    let c = &mut self.ctl[core];
                    c.in_tx = false;
                    c.is_stl = false;
                    c.resolve = Some(Phase::SwitchLock);
                    c.phase_after = Some(Phase::NonTran);
                } else {
                    self.ms.exit_lock(t, core);
                    self.drain_ms();
                    self.stats.lock_commits += 1;
                    self.life[core].commit(t, TxnClass::LockCommit, &mut self.stats.latency);
                    self.ctl[core].phase_after = Some(Phase::NonTran);
                }
                self.ctl[core].cur_txn = 0;
                self.schedule_respond(core, t + 2, GuestResp::Done);
            }
            GuestOp::SpinBegin => {
                self.set_phase(core, t, Phase::WaitLock);
                self.schedule_respond(core, t, GuestResp::Done);
            }
            GuestOp::SpinEnd => {
                self.set_phase(core, t, Phase::NonTran);
                self.schedule_respond(core, t, GuestResp::Done);
            }
            GuestOp::FallbackBegin => {
                self.ms.set_fallback(core, true);
                self.trace.record(t, core, TraceKind::Fallback);
                self.obs_begin(t, core, SpanKind::Fallback);
                self.begin_txn(core);
                self.life[core].begin_hold(t);
                self.stats.fallbacks += 1;
                self.set_phase(core, t, Phase::Lock);
                self.schedule_respond(core, t, GuestResp::Done);
            }
            GuestOp::FallbackEnd => {
                self.ms.set_fallback(core, false);
                if self.cfg.check.enabled {
                    self.trace.record(t, core, TraceKind::FallbackEnd);
                }
                self.obs_end(t, core, SpanKind::Fallback, SpanEnd::End);
                self.ctl[core].cur_txn = 0;
                self.stats.lock_commits += 1;
                self.life[core].commit(t, TxnClass::LockCommit, &mut self.stats.latency);
                self.set_phase(core, t, Phase::NonTran);
                self.schedule_respond(core, t, GuestResp::Done);
            }
            GuestOp::PageTouch(p) => {
                if self.touched_pages.contains(&p) {
                    self.schedule_respond(core, t, GuestResp::Done);
                } else {
                    // Demand-paging fault: maps the page either way; inside
                    // an HTM transaction it aborts (best-effort HTM does
                    // not survive exceptions, and switchingMode explicitly
                    // does not cover faults — §III-C).
                    self.touched_pages.insert(p);
                    if self.ms.core_mode(core) == TxMode::Htm {
                        self.do_abort(t, core, AbortCause::Fault);
                    } else {
                        self.schedule_respond(core, t + self.cfg.fault_service, GuestResp::Done);
                    }
                }
            }
            GuestOp::Barrier => {
                self.set_phase(core, t, Phase::NonTran);
                self.barrier_waiting.push(core);
                let live = self.threads - self.done_count;
                if self.barrier_waiting.len() == live {
                    let waiters = std::mem::take(&mut self.barrier_waiting);
                    for w in waiters {
                        self.schedule_respond(w, t + 1, GuestResp::Done);
                    }
                }
            }
            GuestOp::Exit => {
                self.attr(core, t);
                self.ctl[core].finished = true;
                self.done_count += 1;
                self.end_time = self.end_time.max(t);
                // Anyone blocked on a barrier with us gone would hang; a
                // well-formed workload exits only after its last barrier.
                let live = self.threads - self.done_count;
                if live > 0
                    && !self.barrier_waiting.is_empty()
                    && self.barrier_waiting.len() == live
                {
                    let waiters = std::mem::take(&mut self.barrier_waiting);
                    for w in waiters {
                        self.schedule_respond(w, t + 1, GuestResp::Done);
                    }
                }
            }
        }
    }

    // ---------------- memory accesses ----------------

    fn start_access(&mut self, t: Cycle, core: CoreId, op: GuestOp, reissue: bool) {
        let (addr, kind) = match op {
            GuestOp::Load(a) => (a, AccessKind::Load),
            GuestOp::Store(a, _) | GuestOp::Cas(a, ..) => (a, AccessKind::Store),
            _ => unreachable!(),
        };
        if !reissue && self.ctl[core].in_tx {
            self.ctl[core].tx_insts += 1;
            self.ctl[core].tx_refs += 1;
            self.update_prio(core);
        }
        self.ctl[core].cur_op = Some(op);
        // Every arm drains the memory system first, so the drain hoists
        // above the match (and into the coherence profiling scope).
        self.prof_enter(ProfPhase::Coherence);
        let res = self.ms.access(t, core, addr.line(), kind);
        self.drain_ms();
        self.prof_exit();
        match res {
            AccessResult::Done { at } => self.complete_access(at, core),
            AccessResult::Pending => {}
            AccessResult::Overflow { .. } => self.handle_overflow(t, core),
        }
    }

    /// Capacity overflow in HTM mode: proactive switch (Fig. 6) or abort.
    fn handle_overflow(&mut self, t: Cycle, core: CoreId) {
        let can_switch = self.cfg.policy.switching_mode
            && self.cfg.policy.htmlock
            && !self.ctl[core].switch_tried
            && self.ctl[core].in_tx;
        if can_switch {
            self.ctl[core].switch_tried = true;
            self.ctl[core].switch_pending = true;
            self.obs_begin(t, core, SpanKind::HlaArb);
            self.ms.hla_request(t, core, true);
            self.drain_ms();
        } else {
            self.do_abort(t, core, AbortCause::Of);
        }
    }

    /// Value semantics at access completion time.
    fn complete_access(&mut self, t: Cycle, core: CoreId) {
        self.ctl[core].wakeup_banked = false;
        let op = self.ctl[core].cur_op.take().expect("completion without op");
        // Buffer speculative values based on the ENGINE's view of the
        // transaction, not the memory subsystem's: a protocol abort may
        // already have flipped the memsys mode to None while its notice
        // is still queued behind this completion — writing flat memory
        // then would leak a dying transaction's store (the abort notice
        // converts the response to Aborted and discards the buffer).
        let htm = self.ctl[core].in_tx && !self.ctl[core].is_stl;
        if let Some(watch) = self.dbg_watch {
            let a = match op {
                GuestOp::Load(a) | GuestOp::Store(a, _) | GuestOp::Cas(a, ..) => Some(a),
                _ => None,
            };
            if a.map(|a| a.0 == watch).unwrap_or(false) {
                eprintln!(
                    "[{t}] WATCH c{core} {op:?} htm={htm} mode={:?} flat={}",
                    self.ms.core_mode(core),
                    self.mem.read(Addr(watch))
                );
            }
        }
        // Checked mode records access events at the instant the value
        // resolves: trace-vector order therefore matches flat-memory /
        // write-buffer visibility order exactly, which is what the
        // serializability checker keys its edges on.
        let checked = self.cfg.check.enabled;
        let txn = self.ctl[core].cur_txn;
        let prio = self.ms.prio_of(core);
        let resp = match op {
            GuestOp::Load(a) => {
                let v = if htm {
                    self.bufs[core].read(&self.mem, a)
                } else {
                    self.mem.read(a)
                };
                if checked {
                    self.trace.record(
                        t,
                        core,
                        TraceKind::Read {
                            line: a.line(),
                            txn,
                            prio,
                        },
                    );
                }
                GuestResp::Value(v)
            }
            GuestOp::Store(a, v) => {
                if htm {
                    self.bufs[core].write(a, v);
                } else {
                    self.mem.write(a, v);
                }
                if checked {
                    self.trace.record(
                        t,
                        core,
                        TraceKind::Write {
                            line: a.line(),
                            txn,
                            buffered: htm,
                        },
                    );
                }
                GuestResp::Done
            }
            GuestOp::Cas(a, expected, new) => {
                let cur = if htm {
                    self.bufs[core].read(&self.mem, a)
                } else {
                    self.mem.read(a)
                };
                if checked {
                    self.trace.record(
                        t,
                        core,
                        TraceKind::Read {
                            line: a.line(),
                            txn,
                            prio,
                        },
                    );
                }
                if cur == expected {
                    if htm {
                        self.bufs[core].write(a, new);
                    } else {
                        self.mem.write(a, new);
                    }
                    if checked {
                        self.trace.record(
                            t,
                            core,
                            TraceKind::Write {
                                line: a.line(),
                                txn,
                                buffered: htm,
                            },
                        );
                    }
                }
                GuestResp::Value(cur)
            }
            other => unreachable!("complete_access on {other:?}"),
        };
        self.schedule_respond(core, t, resp);
    }

    fn reissue(&mut self, t: Cycle, core: CoreId) {
        let op = self.ctl[core].cur_op.take().expect("reissue without op");
        self.start_access(t, core, op, true);
    }

    // ---------------- aborts ----------------

    /// Engine-initiated abort (explicit xabort, fault, overflow, failed
    /// switch, self-abort on reject).
    fn do_abort(&mut self, t: Cycle, core: CoreId, cause: AbortCause) {
        self.ms.abort_locally(t, core);
        self.drain_ms();
        self.stats.record_abort(cause);
        self.deliver_abort(t, core, cause);
    }

    /// Common abort delivery (memory-subsystem side already cleaned up).
    fn deliver_abort(&mut self, t: Cycle, core: CoreId, cause: AbortCause) {
        if self.dbg_watch.is_some() {
            eprintln!(
                "[{t}] ABORT c{core} {cause:?} buf={}",
                self.bufs[core].len()
            );
        }
        self.bufs[core].discard();
        self.attr(core, t);
        self.life[core].on_abort(t, cause, &mut self.stats.latency);
        if self.ctl[core].parked.is_some() {
            self.obs_end(t, core, SpanKind::Park, SpanEnd::End);
        }
        self.obs_end(t, core, SpanKind::Txn, SpanEnd::Abort(cause));
        let c = &mut self.ctl[core];
        c.tracker.resolve_spec(Phase::Aborted);
        c.spec = false;
        c.in_tx = false;
        c.is_stl = false;
        c.cur_txn = 0;
        debug_assert!(!c.switch_pending, "abort cannot race an applyingHLA switch");
        c.cur_op = None;
        c.deferred_op = None;
        c.parked = None;
        c.wakeup_banked = false;
        c.doomed = None;
        c.phase = Phase::Rollback;
        c.phase_after = Some(Phase::NonTran);
        self.ms.cancel_pending(core);
        self.trace.record(t, core, TraceKind::Abort(cause));
        self.schedule_respond(core, t + self.cfg.abort_penalty, GuestResp::Aborted(cause));
    }

    // ---------------- notices ----------------

    fn handle_notice(&mut self, t: Cycle, n: CoreNotice) {
        if self.dbg_trace {
            eprintln!("[{t}] notice {n:?}");
        }
        match n {
            CoreNotice::AccessDone { core } => {
                if self.ctl[core].cur_op.is_some() && self.ctl[core].parked.is_none() {
                    self.complete_access(t, core);
                }
            }
            CoreNotice::AccessRejected { core, by_sig } => {
                self.trace.record(t, core, TraceKind::Rejected { by_sig });
                self.handle_reject(t, core, by_sig);
            }
            CoreNotice::TxAborted { core, cause } => {
                // Protocol-side abort (probe loss / back-invalidation).
                self.stats.record_abort(cause);
                if self.ctl[core].respond_scheduled {
                    // Mid-compute or similar: convert the scheduled
                    // response into an abort when it fires.
                    self.bufs[core].discard();
                    self.ctl[core].doomed = Some(cause);
                } else if self.ctl[core].cur_op.is_some() || self.ctl[core].deferred_op.is_some() {
                    // Blocked in the coherence layer, parked, or an op was
                    // deferred waiting for exactly this notice.
                    self.deliver_abort(t, core, cause);
                } else {
                    // Between ops: deliver on the next one.
                    self.bufs[core].discard();
                    self.ctl[core].doomed = Some(cause);
                }
            }
            CoreNotice::Wakeup { core } => {
                if self.ctl[core].parked.is_some() {
                    self.trace.record(t, core, TraceKind::Woken);
                    self.obs_end(t, core, SpanKind::Park, SpanEnd::Woken);
                    self.ctl[core].parked = None;
                    self.ctl[core].wakeup_banked = false;
                    self.life[core].unpark(t, &mut self.stats.latency);
                    self.reissue(t, core);
                } else if self.ctl[core].cur_op.is_some() {
                    // The reject this wake-up answers is still in flight
                    // (wake-ups travel core-to-core and can overtake the
                    // directory's reject response). Bank it.
                    self.ctl[core].wakeup_banked = true;
                }
            }
            CoreNotice::HlaResult { core, granted } => {
                if self.ctl[core].tl_pending {
                    assert!(
                        granted,
                        "TL authorization is granted or queued, never denied"
                    );
                    self.ctl[core].tl_pending = false;
                    self.obs_end(t, core, SpanKind::HlaArb, SpanEnd::Granted);
                    self.ms.enter_lock(core, false);
                    // Record the grant so hlend releases the arbiter.
                    self.ms.finish_hla(t, core, true);
                    self.drain_ms();
                    self.trace.record(t, core, TraceKind::HlBegin);
                    self.obs_begin(t, core, SpanKind::TlLock);
                    self.begin_txn(core);
                    self.life[core].begin_hold(t);
                    self.stats.fallbacks += 1;
                    self.set_phase(core, t, Phase::Lock);
                    self.schedule_respond(core, t + 2, GuestResp::Done);
                } else if self.ctl[core].switch_pending {
                    self.ctl[core].switch_pending = false;
                    if granted {
                        // Successful proactive switch: speculative state
                        // becomes permanent, priority becomes lock-level,
                        // and the blocked access retries in STL mode.
                        self.obs_end(t, core, SpanKind::HlaArb, SpanEnd::Granted);
                        self.obs_end(t, core, SpanKind::Txn, SpanEnd::Switched);
                        self.obs_begin(t, core, SpanKind::StlLock);
                        self.ms.enter_lock(core, true);
                        self.bufs[core].commit(&mut self.mem);
                        self.ms.finish_hla(t, core, true);
                        self.drain_ms();
                        self.ctl[core].is_stl = true;
                        self.life[core].begin_hold(t);
                        self.trace.record(t, core, TraceKind::SwitchGranted);
                        self.stats.switches_granted += 1;
                        self.reissue(t, core);
                    } else {
                        self.obs_end(t, core, SpanKind::HlaArb, SpanEnd::Denied);
                        self.ms.finish_hla(t, core, false);
                        self.drain_ms();
                        self.trace.record(t, core, TraceKind::SwitchDenied);
                        self.stats.switches_denied += 1;
                        self.do_abort(t, core, AbortCause::Of);
                    }
                }
            }
        }
    }

    fn handle_reject(&mut self, t: Cycle, core: CoreId, by_sig: bool) {
        let action = self.cfg.policy.reject_action;
        let in_tx = self.ctl[core].in_tx;
        match action {
            RejectAction::SelfAbort if in_tx && !by_sig => {
                self.do_abort(t, core, AbortCause::Mc);
            }
            RejectAction::RetryLater => {
                let seq = self.next_seq();
                self.ctl[core].parked = Some(seq);
                self.life[core].park(t);
                self.obs_begin(t, core, SpanKind::Park);
                self.q
                    .schedule_at(t + self.cfg.policy.retry_pause, Ev::Retry(core, seq));
            }
            _ => {
                // WaitWakeup (and non-tx/sig rejects under SelfAbort,
                // which cannot abort anything useful): park until the
                // rejecter's commit/abort/hlend wakes us — unless the
                // wake-up already arrived, in which case retry now.
                if self.ctl[core].wakeup_banked {
                    self.ctl[core].wakeup_banked = false;
                    if self.cfg.check.enabled {
                        // The wake-up overtook its reject; checked mode
                        // still wants the Rejected -> Woken pairing.
                        self.trace.record(t, core, TraceKind::Woken);
                    }
                    self.reissue(t, core);
                    return;
                }
                let seq = self.next_seq();
                self.ctl[core].parked = Some(seq);
                self.life[core].park(t);
                self.obs_begin(t, core, SpanKind::Park);
                // wakeup_timeout == Cycle::MAX disables the safety net
                // entirely (schedule-explorer mode: a lost wake-up must
                // surface as a deadlock, not a silent timeout recovery).
                if self.cfg.policy.wakeup_timeout != Cycle::MAX {
                    self.q.schedule_at(
                        t + self.cfg.policy.wakeup_timeout,
                        Ev::ParkTimeout(core, seq),
                    );
                }
            }
        }
    }
}
