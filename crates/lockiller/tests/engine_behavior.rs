//! Focused engine-behaviour tests: the elided-lock runtime's dispatch
//! (ttest/hlend), retry-budget edge cases, RRI pause semantics, LosaTM's
//! progression priority, and phase accounting invariants.

use lockiller::flatmem::{FlatMem, SetupCtx};
use lockiller::guest::GuestCtx;
use lockiller::program::Program;
use lockiller::runner::Runner;
use lockiller::system::SystemKind;
use sim_core::config::SystemConfig;
use sim_core::stats::Phase;
use sim_core::types::Addr;

struct Counter {
    per_thread: u64,
    threads: usize,
    addr: Addr,
}

impl Counter {
    fn new(per_thread: u64) -> Counter {
        Counter {
            per_thread,
            threads: 0,
            addr: Addr::NULL,
        }
    }
}

impl Program for Counter {
    fn name(&self) -> &str {
        "counter"
    }

    fn setup(&mut self, s: &mut SetupCtx, threads: usize) {
        self.threads = threads;
        self.addr = s.alloc(8);
    }

    fn run(&self, ctx: &mut GuestCtx) {
        let addr = self.addr;
        for _ in 0..self.per_thread {
            ctx.critical(|tx| {
                let v = tx.load(addr)?;
                tx.compute(25)?;
                tx.store(addr, v + 1)?;
                Ok(())
            });
            ctx.compute(15);
        }
    }

    fn validate(&self, mem: &FlatMem) -> Result<(), String> {
        let got = mem.read(self.addr);
        let want = self.per_thread * self.threads as u64;
        if got == want {
            Ok(())
        } else {
            Err(format!("counter {got} != {want}"))
        }
    }
}

fn runner(kind: SystemKind, threads: usize) -> Runner {
    Runner::new(kind)
        .threads(threads)
        .config(SystemConfig::testing(threads.max(2)))
}

/// A zero retry budget sends every critical section straight down the
/// fallback path — correctness must hold with no speculation at all.
#[test]
fn zero_retries_uses_fallback_only() {
    for kind in [
        SystemKind::Baseline,
        SystemKind::LockillerRwil,
        SystemKind::LockillerTm,
    ] {
        let mut prog = Counter::new(15);
        let stats = runner(kind, 2).retries(0).run(&mut prog).stats;
        assert_eq!(
            stats.commits,
            0,
            "{}: nothing should commit speculatively",
            kind.name()
        );
        assert_eq!(
            stats.lock_commits,
            30,
            "{}: all criticals on the lock path",
            kind.name()
        );
        assert_eq!(stats.fallbacks, 30);
    }
}

/// With HTMLock, fallback (TL) critical sections still record read/write
/// sets and collide with HTM transactions only on actual conflicts; the
/// counter stays exact either way.
#[test]
fn mixed_tl_and_htm_execution_is_sound() {
    let mut prog = Counter::new(40);
    let stats = runner(SystemKind::LockillerRwil, 4)
        .retries(2)
        .run(&mut prog)
        .stats;
    assert!(
        stats.lock_commits > 0,
        "small budget must produce TL sections"
    );
    assert!(
        stats.commits > 0,
        "HTM transactions must still commit alongside TL"
    );
}

/// RRI (retry-after-pause) must make progress and stay exact without any
/// wake-up machinery.
#[test]
fn rri_pause_retry_progresses() {
    let mut prog = Counter::new(30);
    let stats = runner(SystemKind::LockillerRri, 4).run(&mut prog).stats;
    assert!(stats.rejects > 0, "recovery should reject under contention");
    assert_eq!(stats.wakeups, 0, "RRI must not use wake-ups");
}

/// RAI self-aborts on reject: abort count reflects that, and wake-ups are
/// sent (the rejecter's table drains) but nothing waits on them.
#[test]
fn rai_self_abort_on_reject() {
    let mut prog = Counter::new(30);
    let stats = runner(SystemKind::LockillerRai, 4).run(&mut prog).stats;
    assert!(stats.rejects > 0);
    assert!(
        stats.total_aborts() >= stats.rejects,
        "each reject self-aborts under RAI"
    );
}

/// LosaTM-SAFU (progression priority) is a functioning recovery system:
/// produces rejects, exact results, no lost wake-ups.
#[test]
fn losatm_progression_priority_works() {
    let mut prog = Counter::new(40);
    let stats = runner(SystemKind::LosaTmSafu, 4).run(&mut prog).stats;
    assert!(stats.rejects > 0);
    assert_eq!(stats.wakeup_timeouts, 0);
}

/// Aggregate phase cycles equal aggregate per-core cycles (no time lost
/// or double-counted) on every system.
#[test]
fn phase_accounting_is_complete() {
    for kind in SystemKind::ALL {
        let mut prog = Counter::new(20);
        let stats = runner(kind, 4).run(&mut prog).stats;
        let phase_sum: u64 = Phase::ALL.iter().map(|p| stats.phase(*p)).sum();
        let core_sum: u64 = stats.per_core_cycles.iter().sum();
        assert_eq!(phase_sum, core_sum, "{}: phase cycles leaked", kind.name());
        for &c in &stats.per_core_cycles {
            assert!(
                c <= stats.cycles,
                "{}: a core outlived the run",
                kind.name()
            );
        }
    }
}

/// Speculative cycles resolve into htm/aborted in proportion to commit
/// outcomes: a 100%-commit run has zero `aborted` time.
#[test]
fn uncontended_run_has_no_aborted_time() {
    let mut prog = Counter::new(20);
    let stats = runner(SystemKind::LockillerTm, 1).run(&mut prog).stats;
    assert_eq!(stats.phase(Phase::Aborted), 0);
    assert_eq!(stats.phase(Phase::Rollback), 0);
    assert!(stats.phase(Phase::Htm) > 0);
}

/// Seeds matter only through workload randomness: the deterministic
/// counter gives identical cycle counts for different seeds.
#[test]
fn seed_only_affects_workload_randomness() {
    let run = |seed: u64| {
        let mut prog = Counter::new(15);
        runner(SystemKind::LockillerTm, 2)
            .seed(seed)
            .run(&mut prog)
            .stats
            .cycles
    };
    assert_eq!(run(1), run(2), "counter program consumes no randomness");
}

/// Thread counts beyond the configured cores are rejected loudly.
#[test]
#[should_panic(expected = "exceeds")]
fn too_many_threads_panics() {
    let mut prog = Counter::new(1);
    let _ = Runner::new(SystemKind::Cgl)
        .threads(8)
        .config(SystemConfig::testing(4))
        .run(&mut prog);
}

/// Validation failures surface as panics carrying the workload name.
#[test]
#[should_panic(expected = "validation failed")]
fn validation_failure_panics() {
    struct Broken;
    impl Program for Broken {
        fn name(&self) -> &str {
            "broken"
        }
        fn setup(&mut self, _s: &mut SetupCtx, _t: usize) {}
        fn run(&self, _ctx: &mut GuestCtx) {}
        fn validate(&self, _mem: &FlatMem) -> Result<(), String> {
            Err("intentional".into())
        }
    }
    let _ = runner(SystemKind::Cgl, 1).run(&mut Broken);
}

/// `no_validate` suppresses the oracle (for tests probing failure paths).
#[test]
fn no_validate_skips_oracle() {
    struct Broken;
    impl Program for Broken {
        fn name(&self) -> &str {
            "broken"
        }
        fn setup(&mut self, _s: &mut SetupCtx, _t: usize) {}
        fn run(&self, _ctx: &mut GuestCtx) {}
        fn validate(&self, _mem: &FlatMem) -> Result<(), String> {
            Err("intentional".into())
        }
    }
    let stats = runner(SystemKind::Cgl, 1)
        .no_validate()
        .run(&mut Broken)
        .stats;
    assert_eq!(stats.commits, 0);
}

/// Sequential critical sections reset the re-entrancy guard; nesting is
/// prevented at compile time by the `&mut self` receiver.
#[test]
fn sequential_criticals_reset_guard() {
    struct TwoCrits {
        addr: Addr,
    }
    impl Program for TwoCrits {
        fn name(&self) -> &str {
            "two-crits"
        }
        fn setup(&mut self, s: &mut SetupCtx, _t: usize) {
            self.addr = s.alloc(8);
        }
        fn run(&self, ctx: &mut GuestCtx) {
            let addr = self.addr;
            ctx.critical(|tx| tx.store(addr, 1));
            ctx.critical(|tx| tx.store(addr, 2));
        }
        fn validate(&self, mem: &FlatMem) -> Result<(), String> {
            if mem.read(self.addr) == 2 {
                Ok(())
            } else {
                Err("second critical lost".into())
            }
        }
    }
    let mut prog = TwoCrits { addr: Addr::NULL };
    let _ = runner(SystemKind::LockillerTm, 1).run(&mut prog);
}

/// Trace events come out in causal order with matched begin/end pairs.
#[test]
fn trace_events_are_causally_ordered() {
    use lockiller::trace::TraceKind;
    let mut prog = Counter::new(10);
    let mut out = runner(SystemKind::LockillerRwi, 2).tracing().run(&mut prog);
    let trace = out.take_trace_events();
    let stats = out.stats;
    assert!(!trace.is_empty());
    // Cycles non-decreasing.
    for w in trace.windows(2) {
        assert!(w[0].cycle <= w[1].cycle, "trace out of order");
    }
    // Per core: begins == commits + aborts (every attempt resolves).
    for core in 0..2 {
        let begins = trace
            .iter()
            .filter(|e| e.core == core && e.kind == TraceKind::TxBegin)
            .count();
        let commits = trace
            .iter()
            .filter(|e| e.core == core && e.kind == TraceKind::Commit)
            .count();
        let aborts = trace
            .iter()
            .filter(|e| e.core == core && matches!(e.kind, TraceKind::Abort(_)))
            .count();
        assert_eq!(begins, commits + aborts, "core {core}: unresolved attempts");
    }
    // Aggregates agree with RunStats.
    let total_commits = trace.iter().filter(|e| e.kind == TraceKind::Commit).count() as u64;
    assert_eq!(total_commits, stats.commits);
}

/// The `tmprof` scope profiler only reads the host clock: with it
/// attached, every simulated output — stats, latency histograms, the
/// structured event trace — must be byte-identical to an unprofiled
/// run, and the report it returns must partition its own total.
#[test]
fn host_profiler_is_zero_cost_and_partitions_its_total() {
    let run = |profile: bool| {
        let mut prog = Counter::new(40);
        let mut r = runner(SystemKind::LockillerTm, 4).seed(7).tracing();
        if profile {
            r = r.profile();
        }
        let mut out = r.run(&mut prog);
        let trace = out.take_trace_events();
        (out, trace)
    };
    let (mut plain, trace_plain) = run(false);
    let (mut profiled, trace_profiled) = run(true);
    assert_eq!(
        plain.stats, profiled.stats,
        "profiler moved simulated stats"
    );
    assert_eq!(
        trace_plain, trace_profiled,
        "profiler moved the event trace"
    );
    assert!(plain.host_prof.take().is_none());
    let report = profiled.host_prof.take().expect("profiled run reports");
    // Self times partition the root total exactly, so shares sum to 1.
    let self_sum: u64 = report.nodes.iter().map(|n| n.self_ns).sum();
    assert_eq!(self_sum, report.total_ns, "self times must partition");
    assert_eq!(report.nodes[0].path, "run");
    // Every dispatched event was counted at the dequeue scope.
    assert_eq!(report.events, profiled.stats.events_processed);
    assert!(report.q_depth_mean() >= 1.0, "popped event counts as 1");
    // The hot phases all appear under their documented scope paths.
    for path in ["run;dequeue", "run;ev_recv", "run;ev_respond"] {
        assert!(
            report.node(path).is_some(),
            "missing phase {path} in {:?}",
            report.nodes.iter().map(|n| &n.path).collect::<Vec<_>>()
        );
    }
}
