//! Per-transaction latency accounting: exact cycle assertions against
//! the engine's independently-recorded event trace, the class-count
//! invariants the histograms must satisfy on contended runs, and the
//! bit-determinism the perf gate depends on.

use lockiller::flatmem::{FlatMem, SetupCtx};
use lockiller::guest::GuestCtx;
use lockiller::program::Program;
use lockiller::runner::Runner;
use lockiller::system::SystemKind;
use lockiller::{TraceEvent, TraceKind};
use sim_core::latency::TxnClass;
use sim_core::stats::AbortCause;
use sim_core::types::Addr;

/// One uncontended read-modify-write transaction.
struct OneTxn {
    addr: Addr,
}

impl Program for OneTxn {
    fn name(&self) -> &str {
        "one-txn"
    }

    fn setup(&mut self, s: &mut SetupCtx, _threads: usize) {
        self.addr = s.alloc(8);
    }

    fn run(&self, ctx: &mut GuestCtx) {
        let addr = self.addr;
        ctx.critical(|tx| {
            let v = tx.load(addr)?;
            tx.store(addr, v + 1)?;
            Ok(())
        });
    }

    fn validate(&self, mem: &FlatMem) -> Result<(), String> {
        match mem.read(self.addr) {
            1 => Ok(()),
            got => Err(format!("counter = {got}, want 1")),
        }
    }
}

/// One transaction whose write set cannot fit in the L1: the HTM
/// attempt aborts with `Of` and the runtime takes the fallback lock.
struct Overflow {
    base: Addr,
    lines: u64,
}

impl Program for Overflow {
    fn name(&self) -> &str {
        "overflow"
    }

    fn setup(&mut self, s: &mut SetupCtx, _threads: usize) {
        self.base = s.alloc(self.lines * 64);
    }

    fn run(&self, ctx: &mut GuestCtx) {
        let (base, lines) = (self.base, self.lines);
        ctx.critical(|tx| {
            for i in 0..lines {
                tx.store(Addr(base.0 + i * 64), i)?;
            }
            Ok(())
        });
    }

    fn validate(&self, mem: &FlatMem) -> Result<(), String> {
        for i in 0..self.lines {
            let got = mem.read(Addr(self.base.0 + i * 64));
            if got != i {
                return Err(format!("line {i} = {got}, want {i}"));
            }
        }
        Ok(())
    }
}

/// Shared-counter contention: forces retries, parks, and (on Lockiller
/// systems) lock-mode commits.
struct Counter {
    per_thread: u64,
    threads: usize,
    addr: Addr,
}

impl Program for Counter {
    fn name(&self) -> &str {
        "counter"
    }

    fn setup(&mut self, s: &mut SetupCtx, _threads: usize) {
        self.addr = s.alloc(8);
    }

    fn run(&self, ctx: &mut GuestCtx) {
        let addr = self.addr;
        for _ in 0..self.per_thread {
            ctx.critical(|tx| {
                let v = tx.load(addr)?;
                tx.compute(20)?;
                tx.store(addr, v + 1)?;
                Ok(())
            });
            ctx.compute(30);
        }
    }

    fn validate(&self, mem: &FlatMem) -> Result<(), String> {
        let got = mem.read(self.addr);
        let want = self.per_thread * self.threads as u64;
        if got == want {
            Ok(())
        } else {
            Err(format!("counter = {got}, want {want}"))
        }
    }
}

fn cycle_of(events: &[TraceEvent], kind: TraceKind) -> u64 {
    events
        .iter()
        .find(|e| e.kind == kind)
        .unwrap_or_else(|| panic!("no {kind:?} event in trace"))
        .cycle
}

#[test]
fn uncontended_htm_commit_latency_matches_the_trace_exactly() {
    let mut prog = OneTxn { addr: Addr::NULL };
    let mut out = Runner::new(SystemKind::LockillerTm)
        .threads(1)
        .seed(7)
        .tracing()
        .run(&mut prog);
    let events = out.take_trace_events();
    let lat = &out.stats.latency;
    // The single lifecycle spans TxBegin → Commit; the hooks fire at the
    // same cycles the trace records, so the histogram's raw sum (and its
    // min/max, which are exact) must equal the trace's span.
    let span = cycle_of(&events, TraceKind::Commit) - cycle_of(&events, TraceKind::TxBegin);
    let h = lat.class(TxnClass::HtmCommit);
    assert_eq!(h.count(), 1);
    assert_eq!(h.sum(), span);
    assert_eq!(h.min(), span);
    assert_eq!(h.max(), span);
    // Nothing else happened: no park, no lock hold, no abort.
    assert_eq!(lat.park.count(), 0);
    assert_eq!(lat.fallback_hold.count(), 0);
    assert_eq!(lat.first_abort.count(), 0);
    for c in TxnClass::ALL {
        if c != TxnClass::HtmCommit {
            assert_eq!(lat.class(c).count(), 0, "{} must be empty", c.name());
        }
    }
}

#[test]
fn overflow_fallback_latency_matches_the_trace_exactly() {
    // 1024 lines = 64 KB write set against a 32 KB L1: guaranteed Of.
    let mut prog = Overflow {
        base: Addr::NULL,
        lines: 1024,
    };
    let mut out = Runner::new(SystemKind::Baseline)
        .threads(1)
        .seed(7)
        .tracing()
        .run(&mut prog);
    let events = out.take_trace_events();
    let stats = &out.stats;
    let lat = &stats.latency;
    assert_eq!(stats.lock_commits, 1, "overflow must take the fallback");
    let t_begin = cycle_of(&events, TraceKind::TxBegin);
    let t_abort = cycle_of(&events, TraceKind::Abort(AbortCause::Of));
    let t_fallback = cycle_of(&events, TraceKind::Fallback);
    // The aborted HTM attempt: known cycles, asserted exactly.
    let retry_of = lat.class(TxnClass::Retry(AbortCause::Of));
    assert_eq!(retry_of.count(), 1);
    assert_eq!(retry_of.sum(), t_abort - t_begin);
    assert_eq!(lat.first_abort.count(), 1);
    assert_eq!(lat.first_abort.sum(), t_abort - t_begin);
    // The fallback critical section: both histograms end at the same
    // (unobserved) release cycle, so their difference is the known span
    // from lifecycle start to lock acquisition.
    let total = lat.class(TxnClass::LockCommit);
    assert_eq!(total.count(), 1);
    assert_eq!(lat.fallback_hold.count(), 1);
    assert_eq!(total.sum() - lat.fallback_hold.sum(), t_fallback - t_begin);
    assert_eq!(lat.class(TxnClass::HtmCommit).count(), 0);
}

#[test]
fn contended_run_satisfies_the_class_count_invariants() {
    const THREADS: usize = 4;
    let mut prog = Counter {
        per_thread: 40,
        threads: THREADS,
        addr: Addr::NULL,
    };
    let mut out = Runner::new(SystemKind::LockillerTm)
        .threads(THREADS)
        .seed(0xBEEF)
        .tracing()
        .run(&mut prog);
    let events = out.take_trace_events();
    let stats = &out.stats;
    let lat = &stats.latency;
    // Every committed lifecycle lands in exactly one commit class.
    assert_eq!(
        lat.class(TxnClass::HtmCommit).count(),
        stats.commits - stats.stl_commits
    );
    assert_eq!(lat.class(TxnClass::StlCommit).count(), stats.stl_commits);
    assert_eq!(lat.class(TxnClass::LockCommit).count(), stats.lock_commits);
    // Every abort produced exactly one retry-class sample.
    let retries: u64 = AbortCause::ALL
        .iter()
        .map(|&c| lat.class(TxnClass::Retry(c)).count())
        .sum();
    assert_eq!(retries, stats.total_aborts());
    // Every lock-mode commit held the lock exactly once.
    assert_eq!(
        lat.fallback_hold.count(),
        stats.lock_commits + stats.stl_commits
    );
    // A first-abort is recorded at most once per lifecycle, and only
    // for lifecycles that aborted.
    assert!(lat.first_abort.count() <= stats.total_aborts());
    // The contended counter must actually exercise the park path, and
    // every traced wake-up ended a recorded park span.
    assert!(lat.park.count() > 0, "contended run never parked");
    let woken = events
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::Woken | TraceKind::WakeTimeout))
        .count() as u64;
    assert!(lat.park.count() >= woken);
}

#[test]
fn latency_histograms_are_bit_deterministic() {
    let run = || {
        let mut prog = Counter {
            per_thread: 40,
            threads: 4,
            addr: Addr::NULL,
        };
        Runner::new(SystemKind::LockillerTm)
            .threads(4)
            .seed(0xBEEF)
            .run(&mut prog)
            .stats
    };
    let (a, b) = (run(), run());
    assert_eq!(
        a.latency.to_json(),
        b.latency.to_json(),
        "latency histograms must be byte-identical across identical runs"
    );
    assert_eq!(a.latency.digest(), b.latency.digest());
    assert_eq!(a.to_json(), b.to_json());
}
