//! Memory-model litmus tests: the simulated machine is sequentially
//! consistent by construction (a single event queue totally orders all
//! value operations, and the MESI protocol enforces SWMR). These classic
//! litmus shapes pin that down — if a future optimization broke the
//! ordering, the forbidden outcomes would appear here.

use lockiller::flatmem::{FlatMem, SetupCtx};
use lockiller::guest::GuestCtx;
use lockiller::program::Program;
use lockiller::runner::Runner;
use lockiller::system::SystemKind;
use sim_core::config::SystemConfig;
use sim_core::types::Addr;

/// Message passing: T0 writes data then flag; T1 spins on flag then reads
/// data. Forbidden outcome: flag seen but stale data.
struct MessagePassing {
    data: Addr,
    flag: Addr,
    result: Addr,
}

impl Program for MessagePassing {
    fn name(&self) -> &str {
        "litmus-mp"
    }

    fn setup(&mut self, s: &mut SetupCtx, _t: usize) {
        self.data = s.alloc(8);
        self.flag = s.alloc(8);
        self.result = s.alloc(8);
    }

    fn run(&self, ctx: &mut GuestCtx) {
        if ctx.tid == 0 {
            ctx.store(self.data, 42);
            ctx.store(self.flag, 1);
        } else {
            while ctx.load(self.flag) == 0 {
                ctx.compute(8);
            }
            let d = ctx.load(self.data);
            ctx.store(self.result, d);
        }
    }

    fn validate(&self, mem: &FlatMem) -> Result<(), String> {
        let got = mem.read(self.result);
        if got == 42 {
            Ok(())
        } else {
            Err(format!("message passing violated: read {got} after flag"))
        }
    }
}

#[test]
fn message_passing_is_ordered() {
    for seed in [1u64, 2, 3, 4, 5] {
        let mut prog = MessagePassing {
            data: Addr::NULL,
            flag: Addr::NULL,
            result: Addr::NULL,
        };
        let _ = Runner::new(SystemKind::Baseline)
            .threads(2)
            .config(SystemConfig::testing(2))
            .seed(seed)
            .run(&mut prog);
    }
}

/// Store buffering (Dekker): T0: x=1; r0=y. T1: y=1; r1=x.
/// Under SC, (r0, r1) == (0, 0) is forbidden.
struct StoreBuffering {
    x: Addr,
    y: Addr,
    r0: Addr,
    r1: Addr,
}

impl Program for StoreBuffering {
    fn name(&self) -> &str {
        "litmus-sb"
    }

    fn setup(&mut self, s: &mut SetupCtx, _t: usize) {
        self.x = s.alloc(8);
        self.y = s.alloc(8);
        self.r0 = s.alloc(8);
        self.r1 = s.alloc(8);
    }

    fn run(&self, ctx: &mut GuestCtx) {
        if ctx.tid == 0 {
            ctx.store(self.x, 1);
            let v = ctx.load(self.y);
            ctx.store(self.r0, v);
        } else {
            ctx.store(self.y, 1);
            let v = ctx.load(self.x);
            ctx.store(self.r1, v);
        }
    }

    fn validate(&self, mem: &FlatMem) -> Result<(), String> {
        let (r0, r1) = (mem.read(self.r0), mem.read(self.r1));
        if r0 == 0 && r1 == 0 {
            Err("store buffering observed: both threads read 0 — not SC".into())
        } else {
            Ok(())
        }
    }
}

#[test]
fn no_store_buffering() {
    for seed in [1u64, 7, 13] {
        let mut prog = StoreBuffering {
            x: Addr::NULL,
            y: Addr::NULL,
            r0: Addr::NULL,
            r1: Addr::NULL,
        };
        let _ = Runner::new(SystemKind::Baseline)
            .threads(2)
            .config(SystemConfig::testing(2))
            .seed(seed)
            .run(&mut prog);
    }
}

/// Coherence (CoRR): a single location's writes are seen in a single
/// total order by all readers — two readers must not see {1 then 2} and
/// {2 then 1} respectively.
struct CoRR {
    x: Addr,
    /// Two observations per reader thread.
    obs: Addr,
}

impl Program for CoRR {
    fn name(&self) -> &str {
        "litmus-corr"
    }

    fn setup(&mut self, s: &mut SetupCtx, _t: usize) {
        self.x = s.alloc(8);
        self.obs = s.alloc(4 * 8);
    }

    fn run(&self, ctx: &mut GuestCtx) {
        match ctx.tid {
            0 => ctx.store(self.x, 1),
            1 => ctx.store(self.x, 2),
            reader => {
                let a = ctx.load(self.x);
                ctx.compute(5);
                let b = ctx.load(self.x);
                let base = (reader - 2) as u64 * 16;
                ctx.store(self.obs.add(base), a);
                ctx.store(self.obs.add(base + 8), b);
            }
        }
    }

    fn validate(&self, mem: &FlatMem) -> Result<(), String> {
        let r = |i: u64| mem.read(self.obs.add(i * 8));
        let (a0, b0, a1, b1) = (r(0), r(1), r(2), r(3));
        // Each reader's pair must be non-decreasing in SOME total write
        // order; the two observed orders must not contradict each other.
        let saw_12 = a0 == 1 && b0 == 2 || a1 == 1 && b1 == 2;
        let saw_21 = a0 == 2 && b0 == 1 || a1 == 2 && b1 == 1;
        if saw_12 && saw_21 {
            Err(format!(
                "coherence violated: contradictory orders ({a0},{b0}) ({a1},{b1})"
            ))
        } else {
            Ok(())
        }
    }
}

#[test]
fn coherence_order_is_total() {
    for seed in 1u64..=6 {
        let mut prog = CoRR {
            x: Addr::NULL,
            obs: Addr::NULL,
        };
        let _ = Runner::new(SystemKind::Baseline)
            .threads(4)
            .config(SystemConfig::testing(4))
            .seed(seed)
            .run(&mut prog);
    }
}

/// Transactional atomicity litmus: a transaction writing two locations is
/// seen entirely or not at all by a non-transactional snapshot pair...
/// (the reader uses a transaction too, so both sides are atomic).
struct AtomicPair {
    a: Addr,
    b: Addr,
    bad: Addr,
}

impl Program for AtomicPair {
    fn name(&self) -> &str {
        "litmus-atomic-pair"
    }

    fn setup(&mut self, s: &mut SetupCtx, _t: usize) {
        self.a = s.alloc(8);
        self.b = s.alloc(8);
        self.bad = s.alloc(8);
    }

    fn run(&self, ctx: &mut GuestCtx) {
        let (a, b, bad) = (self.a, self.b, self.bad);
        if ctx.tid.is_multiple_of(2) {
            for i in 1..=20u64 {
                ctx.critical(|tx| {
                    tx.store(a, i)?;
                    tx.compute(15)?;
                    tx.store(b, i)?;
                    Ok(())
                });
            }
        } else {
            for _ in 0..20 {
                let torn = ctx.critical(|tx| {
                    let x = tx.load(a)?;
                    tx.compute(10)?;
                    let y = tx.load(b)?;
                    Ok(x != y)
                });
                if torn {
                    ctx.store(bad, 1);
                }
                ctx.compute(12);
            }
        }
    }

    fn validate(&self, mem: &FlatMem) -> Result<(), String> {
        if mem.read(self.bad) != 0 {
            Err("atomicity violated: reader saw a torn pair".into())
        } else {
            Ok(())
        }
    }
}

#[test]
fn transactions_never_tear() {
    for kind in [
        SystemKind::Baseline,
        SystemKind::LockillerRwi,
        SystemKind::LockillerTm,
    ] {
        let mut prog = AtomicPair {
            a: Addr::NULL,
            b: Addr::NULL,
            bad: Addr::NULL,
        };
        let _ = Runner::new(kind)
            .threads(4)
            .config(SystemConfig::testing(4))
            .run(&mut prog);
    }
}

/// The same litmus set under the direct-response topology.
#[test]
fn litmus_hold_under_direct_topology() {
    let mut cfg = SystemConfig::testing(4);
    cfg.mem.direct_rsp = true;
    let mut prog = AtomicPair {
        a: Addr::NULL,
        b: Addr::NULL,
        bad: Addr::NULL,
    };
    let _ = Runner::new(SystemKind::LockillerTm)
        .threads(4)
        .config(cfg.clone())
        .run(&mut prog);
    let mut mp = MessagePassing {
        data: Addr::NULL,
        flag: Addr::NULL,
        result: Addr::NULL,
    };
    let mut cfg2 = cfg;
    cfg2.num_cores = 2;
    cfg2.noc.width = 2;
    cfg2.noc.height = 2;
    let _ = Runner::new(SystemKind::Baseline)
        .threads(2)
        .config(cfg2)
        .run(&mut mp);
}
