//! Guest-runtime semantics tests: lock subscription (Listing 1), the
//! ttest dispatch (Listing 2), and the exact interplay of the fallback
//! lock with concurrent transactions — checked through observable
//! statistics on crafted programs.

use lockiller::flatmem::{FlatMem, SetupCtx};
use lockiller::guest::GuestCtx;
use lockiller::program::Program;
use lockiller::runner::Runner;
use lockiller::system::SystemKind;
use sim_core::config::SystemConfig;
use sim_core::stats::AbortCause;
use sim_core::types::Addr;

/// Thread 0 occupies the fallback path for a long critical section while
/// thread 1 runs many small transactions on unrelated data.
struct LongLockShortTxs {
    shared_a: Addr,
    shared_b: Addr,
}

impl Program for LongLockShortTxs {
    fn name(&self) -> &str {
        "long-lock-short-txs"
    }

    fn setup(&mut self, s: &mut SetupCtx, _threads: usize) {
        self.shared_a = s.alloc(16 * 8);
        self.shared_b = s.alloc(8);
    }

    fn run(&self, ctx: &mut GuestCtx) {
        if ctx.tid == 0 {
            // Force the fallback path: this critical touches more lines
            // than the (tiny) L1 holds, so every speculative attempt dies
            // of capacity overflow and the runtime takes the lock.
            let a = self.shared_a;
            for _ in 0..6 {
                ctx.critical(|tx| {
                    for i in 0..16 {
                        let cell = a.add(i * 8);
                        let v = tx.load(cell)?;
                        tx.store(cell, v + 1)?;
                    }
                    tx.compute(200)?;
                    Ok(())
                });
            }
        } else {
            let b = self.shared_b;
            for _ in 0..30 {
                ctx.critical(|tx| {
                    let v = tx.load(b)?;
                    tx.compute(10)?;
                    tx.store(b, v + 1)?;
                    Ok(())
                });
                ctx.compute(20);
            }
        }
    }

    fn validate(&self, mem: &FlatMem) -> Result<(), String> {
        for i in 0..16 {
            if mem.read(self.shared_a.add(i * 8)) != 6 {
                return Err(format!("thread 0 lost increments at line {i}"));
            }
        }
        if mem.read(self.shared_b) != 30 {
            return Err(format!(
                "thread 1 lost increments: {}",
                mem.read(self.shared_b)
            ));
        }
        Ok(())
    }
}

/// Baseline with a zero retry budget: thread 0 always holds the fallback
/// lock, and every one of thread 1's transactions dies on subscription
/// (`mutex` aborts) until the lock frees — HTMLock systems sail through.
#[test]
fn disjoint_data_blocked_by_lock_only_on_baseline() {
    let run = |kind: SystemKind| {
        let mut prog = LongLockShortTxs {
            shared_a: Addr::NULL,
            shared_b: Addr::NULL,
        };
        // L1 of 8 lines: thread 0's 16-line criticals always overflow.
        let mut cfg = SystemConfig::testing(2);
        cfg.mem.l1 = sim_core::config::CacheGeometry { sets: 4, ways: 2 };
        Runner::new(kind)
            .threads(2)
            .config(cfg)
            .run(&mut prog)
            .stats
    };
    let base = run(SystemKind::Baseline);
    let rwil = run(SystemKind::LockillerRwil);
    // Baseline: thread 1's transactions die on the subscribed lock even
    // though the data is disjoint.
    assert!(
        base.abort_count(AbortCause::Mutex) > 0,
        "baseline must suffer subscription aborts on disjoint data"
    );
    // HTMLock: no subscription, disjoint data, so the lock transaction
    // coexists with thread 1's HTM transactions.
    assert_eq!(rwil.abort_count(AbortCause::Mutex), 0);
    assert_eq!(
        rwil.abort_count(AbortCause::Lock),
        0,
        "disjoint data: no lock-tx conflicts"
    );
    // HTMLock wastes far less transactional work: thread 1's transactions
    // are no longer collateral damage of thread 0's lock sections. (The
    // wall-clock advantage depends on overlap timing at this tiny scale,
    // so assert on wasted work, the paper's Fig. 9 argument.)
    assert!(
        rwil.total_aborts() < base.total_aborts(),
        "HTMLock must waste fewer transactions ({} vs {})",
        rwil.total_aborts(),
        base.total_aborts()
    );
}

/// A lock transaction touching the same data as HTM transactions aborts
/// or rejects them — `lock`-cause aborts appear only under HTMLock.
#[test]
fn lock_transaction_conflicts_classified() {
    struct SharedAll {
        addr: Addr,
    }
    impl Program for SharedAll {
        fn name(&self) -> &str {
            "shared-all"
        }
        fn setup(&mut self, s: &mut SetupCtx, _t: usize) {
            self.addr = s.alloc(8);
        }
        fn run(&self, ctx: &mut GuestCtx) {
            let a = self.addr;
            for _ in 0..25 {
                ctx.critical(|tx| {
                    let v = tx.load(a)?;
                    tx.compute(40)?;
                    tx.store(a, v + 1)?;
                    Ok(())
                });
            }
        }
        fn validate(&self, mem: &FlatMem) -> Result<(), String> {
            if mem.read(self.addr) == 100 {
                Ok(())
            } else {
                Err(format!("{} != 100", mem.read(self.addr)))
            }
        }
    }
    let mut prog = SharedAll { addr: Addr::NULL };
    let stats = Runner::new(SystemKind::LockillerRwil)
        .threads(4)
        .config(SystemConfig::testing(4))
        .retries(2)
        .run(&mut prog)
        .stats;
    assert!(
        stats.fallbacks > 0,
        "retries(2) under contention must reach the fallback"
    );
    assert!(
        stats.abort_count(AbortCause::Lock) + stats.rejects > 0,
        "conflicting lock transactions must abort or reject HTM peers"
    );
}

/// The subscription read is what kills baseline transactions: with no
/// lock activity at all (single thread), subscription costs nothing.
#[test]
fn subscription_free_when_lock_idle() {
    struct Solo {
        addr: Addr,
    }
    impl Program for Solo {
        fn name(&self) -> &str {
            "solo"
        }
        fn setup(&mut self, s: &mut SetupCtx, _t: usize) {
            self.addr = s.alloc(8);
        }
        fn run(&self, ctx: &mut GuestCtx) {
            let a = self.addr;
            for _ in 0..10 {
                ctx.critical(|tx| {
                    let v = tx.load(a)?;
                    tx.store(a, v + 1)?;
                    Ok(())
                });
            }
        }
    }
    let mut prog = Solo { addr: Addr::NULL };
    let stats = Runner::new(SystemKind::Baseline)
        .threads(1)
        .config(SystemConfig::testing(2))
        .run(&mut prog)
        .stats;
    assert_eq!(stats.total_aborts(), 0);
    assert_eq!(stats.commits, 10);
    assert_eq!(stats.fallbacks, 0);
}
