//! Full-stack runtime tests: guest programs on OS threads, through the
//! elided-lock runtime, the engine, and the coherence protocol, on every
//! Table-II system.

use lockiller::flatmem::{FlatMem, SetupCtx};
use lockiller::guest::GuestCtx;
use lockiller::program::Program;
use lockiller::runner::Runner;
use lockiller::system::SystemKind;
use sim_core::config::SystemConfig;
use sim_core::stats::{AbortCause, Phase};
use sim_core::types::Addr;

/// Every thread increments one shared counter `per_thread` times.
struct Counter {
    per_thread: u64,
    addr: Addr,
}

impl Counter {
    fn new(per_thread: u64) -> Counter {
        Counter {
            per_thread,
            addr: Addr::NULL,
        }
    }
}

impl Program for Counter {
    fn name(&self) -> &str {
        "counter"
    }

    fn setup(&mut self, s: &mut SetupCtx, _threads: usize) {
        self.addr = s.alloc(8);
    }

    fn run(&self, ctx: &mut GuestCtx) {
        let addr = self.addr;
        for _ in 0..self.per_thread {
            ctx.critical(|tx| {
                let v = tx.load(addr)?;
                tx.compute(20)?;
                tx.store(addr, v + 1)?;
                Ok(())
            });
            ctx.compute(30);
        }
    }

    fn validate(&self, mem: &FlatMem) -> Result<(), String> {
        let got = mem.read(self.addr);
        // threads is not stored; validate against per-run expectation set
        // by the tests via the expected field below.
        let _ = got;
        Ok(())
    }
}

/// Counter with an exact expected total (threads * per_thread).
struct CheckedCounter {
    inner: Counter,
    threads: usize,
}

impl Program for CheckedCounter {
    fn name(&self) -> &str {
        "checked-counter"
    }

    fn setup(&mut self, s: &mut SetupCtx, threads: usize) {
        self.threads = threads;
        self.inner.setup(s, threads);
    }

    fn run(&self, ctx: &mut GuestCtx) {
        self.inner.run(ctx);
    }

    fn validate(&self, mem: &FlatMem) -> Result<(), String> {
        let got = mem.read(self.inner.addr);
        let want = self.inner.per_thread * self.threads as u64;
        if got == want {
            Ok(())
        } else {
            Err(format!("counter={got}, expected {want}"))
        }
    }
}

fn checked(per_thread: u64) -> CheckedCounter {
    CheckedCounter {
        inner: Counter::new(per_thread),
        threads: 0,
    }
}

fn small_runner(kind: SystemKind, threads: usize) -> Runner {
    Runner::new(kind)
        .threads(threads)
        .config(SystemConfig::testing(threads.max(2)))
}

#[test]
fn counter_correct_on_every_system() {
    for kind in SystemKind::ALL {
        for threads in [1, 2, 4] {
            let mut prog = checked(25);
            let stats = small_runner(kind, threads).run(&mut prog).stats;
            assert!(stats.cycles > 0, "{}: no cycles simulated", kind.name());
            let total = stats.commits + stats.lock_commits;
            assert_eq!(
                total,
                25 * threads as u64,
                "{} @{threads}: committed criticals mismatch",
                kind.name()
            );
            assert_eq!(stats.wakeup_timeouts, 0, "{}: wake-up lost", kind.name());
        }
    }
}

#[test]
fn single_thread_uncontended_commits_everything() {
    for kind in SystemKind::ALL {
        let mut prog = checked(10);
        let stats = small_runner(kind, 1).run(&mut prog).stats;
        if kind.uses_htm() {
            assert_eq!(
                stats.commits,
                10,
                "{}: uncontended txs must all commit",
                kind.name()
            );
            assert_eq!(stats.total_aborts(), 0, "{}: spurious aborts", kind.name());
        } else {
            assert_eq!(stats.lock_commits, 10);
        }
    }
}

#[test]
fn runs_are_deterministic() {
    for kind in [
        SystemKind::Baseline,
        SystemKind::LockillerRwi,
        SystemKind::LockillerTm,
    ] {
        let run = || {
            let mut prog = checked(20);
            let s = small_runner(kind, 4).run(&mut prog).stats;
            (s.cycles, s.commits, s.total_aborts(), s.rejects, s.wakeups)
        };
        assert_eq!(run(), run(), "{} not deterministic", kind.name());
    }
}

#[test]
fn contention_causes_aborts_on_baseline() {
    let mut prog = checked(40);
    let stats = small_runner(SystemKind::Baseline, 4).run(&mut prog).stats;
    assert!(
        stats.total_aborts() > 0,
        "4 threads hammering one counter must conflict (got {} aborts)",
        stats.total_aborts()
    );
    assert!(stats.abort_count(AbortCause::Mc) + stats.abort_count(AbortCause::Mutex) > 0);
}

#[test]
fn recovery_improves_commit_rate_under_contention() {
    let base = small_runner(SystemKind::Baseline, 4)
        .run(&mut checked(60))
        .stats;
    let rwi = small_runner(SystemKind::LockillerRwi, 4)
        .run(&mut checked(60))
        .stats;
    assert!(
        rwi.commit_rate() >= base.commit_rate(),
        "recovery should not lower the commit rate: baseline {:.3} vs RWI {:.3}",
        base.commit_rate(),
        rwi.commit_rate()
    );
    assert!(rwi.rejects > 0, "recovery never fired under contention");
}

#[test]
fn cgl_serializes_with_waitlock_time() {
    let mut prog = checked(20);
    let stats = small_runner(SystemKind::Cgl, 4).run(&mut prog).stats;
    assert_eq!(stats.commits, 0);
    assert_eq!(stats.lock_commits, 80);
    assert!(
        stats.phase(Phase::WaitLock) > 0,
        "4 contending threads must queue on the lock"
    );
    assert!(stats.phase(Phase::Lock) > 0);
}

/// A transaction whose footprint exceeds the (tiny) L1: exercises the
/// capacity-overflow path — abort+fallback without switchingMode, STL
/// switch with it.
struct BigTx {
    lines: u64,
    base: Addr,
    rounds: u64,
}

impl Program for BigTx {
    fn name(&self) -> &str {
        "big-tx"
    }

    fn setup(&mut self, s: &mut SetupCtx, _threads: usize) {
        self.base = s.alloc(self.lines * 8);
    }

    fn run(&self, ctx: &mut GuestCtx) {
        let base = self.base;
        let lines = self.lines;
        for _ in 0..self.rounds {
            ctx.critical(|tx| {
                for i in 0..lines {
                    let a = base.add(i * 8);
                    let v = tx.load(a)?;
                    tx.store(a, v + 1)?;
                }
                Ok(())
            });
        }
    }

    fn validate(&self, mem: &FlatMem) -> Result<(), String> {
        // Single-threaded usage in these tests: every line bumped rounds
        // times per thread; checked per-test instead.
        let _ = mem;
        Ok(())
    }
}

fn tiny_l1(threads: usize) -> SystemConfig {
    let mut c = SystemConfig::testing(threads.max(2));
    c.mem.l1 = sim_core::config::CacheGeometry { sets: 2, ways: 2 };
    c
}

#[test]
fn capacity_overflow_falls_back_without_switching() {
    let mut prog = BigTx {
        lines: 16,
        base: Addr::NULL,
        rounds: 3,
    };
    let stats = Runner::new(SystemKind::LockillerRwil)
        .threads(1)
        .config(tiny_l1(1))
        .run(&mut prog)
        .stats;
    assert!(
        stats.abort_count(AbortCause::Of) > 0,
        "big tx must overflow the 4-line L1"
    );
    assert_eq!(stats.switches_granted, 0, "RWIL has no switchingMode");
    assert_eq!(
        stats.lock_commits, 3,
        "every round must finish on the fallback path"
    );
    assert!(stats.fallbacks >= 3);
}

#[test]
fn switching_mode_rescues_overflowing_tx() {
    let mut prog = BigTx {
        lines: 16,
        base: Addr::NULL,
        rounds: 3,
    };
    let stats = Runner::new(SystemKind::LockillerTm)
        .threads(1)
        .config(tiny_l1(1))
        .run(&mut prog)
        .stats;
    assert_eq!(
        stats.switches_granted, 3,
        "each round should switch to STL exactly once"
    );
    assert_eq!(stats.stl_commits, 3);
    assert_eq!(
        stats.abort_count(AbortCause::Of),
        0,
        "switch must prevent capacity aborts"
    );
    assert_eq!(
        stats.fallbacks, 0,
        "no lock acquisition needed for STL finishes"
    );
    assert!(
        stats.phase(Phase::SwitchLock) > 0,
        "switchLock time must be attributed"
    );
}

#[test]
fn baseline_counts_mutex_aborts_but_htmlock_does_not() {
    // A small retry budget forces fallback-lock usage; subscribed
    // baseline transactions then die with `mutex` aborts. HTMLock removes
    // the subscription, so `mutex` disappears (Fig. 10's headline effect).
    let base = small_runner(SystemKind::Baseline, 4)
        .retries(1)
        .run(&mut checked(80))
        .stats;
    let rwil = small_runner(SystemKind::LockillerRwil, 4)
        .retries(1)
        .run(&mut checked(80))
        .stats;
    assert!(base.fallbacks > 0, "retry budget of 1 must force fallbacks");
    assert!(
        base.abort_count(AbortCause::Mutex) > 0,
        "baseline under contention must see lock-subscription aborts"
    );
    assert_eq!(
        rwil.abort_count(AbortCause::Mutex),
        0,
        "HTMLock eliminates mutex aborts"
    );
}

/// Allocation-heavy transaction triggering demand-paging faults.
struct Faulter {
    region: Addr,
    pages: u64,
}

impl Program for Faulter {
    fn name(&self) -> &str {
        "faulter"
    }

    fn setup(&mut self, s: &mut SetupCtx, _threads: usize) {
        // Reserve address space WITHOUT touching it page-by-page: the
        // runner maps pages below brk, so fault pages must lie above.
        self.region = s.alloc(0);
    }

    fn run(&self, ctx: &mut GuestCtx) {
        // Touch fresh pages inside transactions: each first touch faults.
        for p in 0..self.pages {
            let page = 1_000_000 + ctx.tid as u64 * 1000 + p;
            ctx.critical(|tx| {
                tx.page_touch(page)?;
                tx.compute(10)?;
                Ok(())
            });
        }
    }
}

#[test]
fn faults_abort_htm_and_are_not_rescued_by_switching() {
    for kind in [SystemKind::Baseline, SystemKind::LockillerTm] {
        let mut prog = Faulter {
            region: Addr::NULL,
            pages: 5,
        };
        let stats = small_runner(kind, 2).run(&mut prog).stats;
        assert!(
            stats.abort_count(AbortCause::Fault) > 0,
            "{}: first page touches inside txs must fault-abort",
            kind.name()
        );
        assert_eq!(
            stats.switches_granted,
            0,
            "{}: switchingMode must not cover faults",
            kind.name()
        );
    }
}

#[test]
fn phase_breakdown_accounts_all_cycles() {
    let mut prog = checked(30);
    let stats = small_runner(SystemKind::LockillerTm, 4)
        .run(&mut prog)
        .stats;
    let sum: u64 = Phase::ALL.iter().map(|p| stats.phase(*p)).sum();
    let max_core = *stats.per_core_cycles.iter().max().unwrap();
    assert!(sum > 0);
    // Per-core totals bounded by final time; aggregate bounded by t*n.
    assert!(max_core <= stats.cycles);
    assert!(sum <= stats.cycles * stats.threads as u64);
    // Nothing left unresolved in the pending bucket.
    let per_core_sum: u64 = stats.per_core_cycles.iter().sum();
    assert_eq!(sum, per_core_sum, "pending speculative cycles leaked");
}

#[test]
fn memory_image_identical_across_htm_systems() {
    // The counter program is deterministic in its final memory state, so
    // every system must produce the same image (serializability oracle).
    let digest = |kind: SystemKind| {
        let mut prog = checked(30);
        let r = small_runner(kind, 4);
        let mem = r.run(&mut prog).mem;
        mem.digest()
    };
    let want = digest(SystemKind::Cgl);
    for kind in SystemKind::ALL {
        assert_eq!(digest(kind), want, "{} corrupted memory", kind.name());
    }
}

#[test]
fn barrier_synchronizes_threads() {
    struct BarrierProg {
        flags: Addr,
    }
    impl Program for BarrierProg {
        fn name(&self) -> &str {
            "barrier"
        }
        fn setup(&mut self, s: &mut SetupCtx, threads: usize) {
            self.flags = s.alloc(threads as u64 * 8);
        }
        fn run(&self, ctx: &mut GuestCtx) {
            // Phase 1: publish; barrier; phase 2: everyone checks everyone.
            ctx.store(self.flags.add(ctx.tid as u64 * 8), 1);
            ctx.barrier();
            for t in 0..ctx.threads {
                let v = ctx.load(self.flags.add(t as u64 * 8));
                assert_eq!(v, 1, "thread {} missed thread {t}'s flag", ctx.tid);
            }
            ctx.barrier();
        }
    }
    let mut prog = BarrierProg { flags: Addr::NULL };
    let _ = small_runner(SystemKind::Baseline, 4).run(&mut prog);
}
