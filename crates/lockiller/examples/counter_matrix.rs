//! Diagnostic matrix: run a contended shared-counter program on every
//! Table-II system and several thread counts, printing commit/abort/
//! reject statistics. Doubles as a liveness smoke test (set
//! `LOCKILLER_WALL_TIMEOUT=20` and/or `LOCKILLER_MAX_CYCLES=...` to turn
//! hangs into diagnosable panics with a full engine state dump).

use lockiller::flatmem::{FlatMem, SetupCtx};
use lockiller::guest::GuestCtx;
use lockiller::program::Program;
use lockiller::runner::Runner;
use lockiller::system::SystemKind;
use sim_core::config::SystemConfig;
use sim_core::types::Addr;

struct C {
    addr: Addr,
    n: u64,
    threads: u64,
}

impl Program for C {
    fn name(&self) -> &str {
        "counter"
    }
    fn setup(&mut self, s: &mut SetupCtx, _t: usize) {
        self.addr = s.alloc(8);
    }
    fn run(&self, ctx: &mut GuestCtx) {
        let addr = self.addr;
        for _ in 0..self.n {
            ctx.critical(|tx| {
                let v = tx.load(addr)?;
                tx.compute(20)?;
                tx.store(addr, v + 1)?;
                Ok(())
            });
            ctx.compute(30);
        }
    }
    fn validate(&self, m: &FlatMem) -> Result<(), String> {
        let got = m.read(self.addr);
        let want = self.n * self.threads;
        if got == want {
            Ok(())
        } else {
            Err(format!("got {got}, want {want}"))
        }
    }
}

fn main() {
    for kind in SystemKind::ALL {
        for threads in [1usize, 2, 4] {
            eprintln!(">>> {} t={threads}", kind.name());
            let mut p = C {
                addr: Addr::NULL,
                n: 25,
                threads: threads as u64,
            };
            let s = Runner::new(kind)
                .threads(threads)
                .config(SystemConfig::testing(threads.max(2)))
                .run(&mut p)
                .stats;
            println!(
                "{} t={threads} cycles={} commits={} lock={} aborts={} rejects={} timeouts={}",
                kind.name(),
                s.cycles,
                s.commits,
                s.lock_commits,
                s.total_aborts(),
                s.rejects,
                s.wakeup_timeouts
            );
        }
    }
}
