//! Bloom-filter signatures for the HTMLock overflow sets (`OfRdSig` and
//! `OfWrSig` in Fig. 5 of the paper), in the style of LogTM-SE.
//!
//! A signature never yields a false negative (a line that was added always
//! tests positive until the signature is cleared), so overflowed
//! lock-transaction state is always protected; false positives only cause
//! spurious rejects, which cost performance, never correctness — exactly
//! the trade-off the hardware design makes.

use sim_core::fxhash::hash_u64;
use sim_core::types::LineAddr;

/// A fixed-size Bloom filter over cache-line addresses.
#[derive(Clone, Debug)]
pub struct Signature {
    bits: Vec<u64>,
    nbits: usize,
    hashes: usize,
    inserted: u64,
}

impl Signature {
    /// `nbits` must be a power of two; `hashes` >= 1.
    pub fn new(nbits: usize, hashes: usize) -> Signature {
        assert!(
            nbits.is_power_of_two() && nbits >= 64,
            "signature bits must be a power of two >= 64"
        );
        assert!(hashes >= 1);
        Signature {
            bits: vec![0; nbits / 64],
            nbits,
            hashes,
            inserted: 0,
        }
    }

    fn positions(&self, line: LineAddr) -> impl Iterator<Item = usize> + '_ {
        let mask = self.nbits - 1;
        let h1 = hash_u64(line.0);
        let h2 = hash_u64(line.0.rotate_left(32) ^ 0x5bd1_e995) | 1;
        (0..self.hashes).map(move |i| (h1.wrapping_add(h2.wrapping_mul(i as u64)) as usize) & mask)
    }

    pub fn add(&mut self, line: LineAddr) {
        // Collect first: positions() borrows self immutably.
        let pos: Vec<usize> = self.positions(line).collect();
        for p in pos {
            self.bits[p / 64] |= 1u64 << (p % 64);
        }
        self.inserted += 1;
    }

    pub fn test(&self, line: LineAddr) -> bool {
        self.positions(line)
            .all(|p| self.bits[p / 64] & (1u64 << (p % 64)) != 0)
    }

    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
        self.inserted = 0;
    }

    /// True if nothing has been inserted since the last clear. Lets the
    /// LLC skip signature checks entirely when no lock transaction has
    /// overflowed — the common case.
    pub fn is_empty(&self) -> bool {
        self.inserted == 0
    }

    /// Number of insertions since the last clear.
    pub fn population(&self) -> u64 {
        self.inserted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut s = Signature::new(1024, 3);
        let lines: Vec<LineAddr> = (0..200).map(|i| LineAddr(i * 37 + 5)).collect();
        for &l in &lines {
            s.add(l);
        }
        for &l in &lines {
            assert!(s.test(l), "false negative for {l:?}");
        }
    }

    #[test]
    fn empty_tests_negative() {
        let s = Signature::new(1024, 3);
        assert!(s.is_empty());
        for i in 0..100 {
            assert!(!s.test(LineAddr(i)));
        }
    }

    #[test]
    fn clear_resets() {
        let mut s = Signature::new(1024, 3);
        s.add(LineAddr(42));
        assert!(s.test(LineAddr(42)));
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert!(!s.test(LineAddr(42)));
    }

    #[test]
    fn false_positive_rate_reasonable() {
        let mut s = Signature::new(1024, 3);
        for i in 0..64 {
            s.add(LineAddr(i));
        }
        // Test 10_000 lines not inserted; expect far fewer than 20% FPs
        // (theory: ~(1 - e^{-3*64/1024})^3 ≈ 0.5%).
        let fps = (1000..11_000).filter(|&i| s.test(LineAddr(i))).count();
        assert!(fps < 2000, "false positive rate too high: {fps}/10000");
    }

    #[test]
    fn saturated_signature_still_correct() {
        let mut s = Signature::new(64, 2);
        for i in 0..1000 {
            s.add(LineAddr(i));
        }
        // Fully saturated: everything positive (degenerate but safe).
        for i in 0..1000 {
            assert!(s.test(LineAddr(i)));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_sizes() {
        let _ = Signature::new(1000, 3);
    }
}
