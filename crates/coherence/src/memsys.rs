//! The memory subsystem: private L1s + banked directory LLC + NoC + HTM
//! extensions, orchestrated as one state machine.
//!
//! The engine (in the `lockiller` crate) drives this through three entry
//! points:
//!
//! - [`MemSystem::access`] — a core performs a load/store;
//! - [`MemSystem::handle_msg`] — a previously scheduled NoC message
//!   arrives (the engine owns the event queue);
//! - mode-transition calls (`begin_htm`, `commit_htm`, `abort_locally`,
//!   `enter_lock`, `exit_lock`, `hla_request`, `finish_hla`).
//!
//! After every call the engine drains [`MemSystem::take_outputs`]:
//! `(cycle, NetMsg)` pairs to re-schedule and `(cycle, CoreNotice)` pairs
//! informing the per-core controllers of completions, rejects, aborts,
//! wake-ups, and HLA results.
//!
//! See the crate docs for the value/timing decoupling argument.

use crate::arbiter::{HlaArbiter, HlaDecision};
use crate::bank::{Bank, CoreSet, DirState, Pending};
use crate::bloom::Signature;
use crate::l1::{Mesi, Victim, L1};
use crate::msg::{
    arbitrate, GrantState, L1Rsp, NetMsg, Prio, ReqInfo, ReqKind, ReqMode, TxMode, Winner,
    PRIO_LOCK,
};
use noc::Mesh;
use sim_core::config::{RejectAction, SystemConfig};
use sim_core::obs::{ConflictEdge, ConflictResolution, Metric, MetricSpec, RecoveryAction};
use sim_core::stats::AbortCause;
use sim_core::types::{CoreId, Cycle, LineAddr};

/// Kind of core access, protocol-wise. CAS needs write permission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    Load,
    Store,
}

/// Immediate outcome of [`MemSystem::access`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessResult {
    /// L1 hit; complete at the given cycle.
    Done { at: Cycle },
    /// Request issued; a notice will follow.
    Pending,
    /// The fill would have to evict a transactional line while in HTM
    /// mode: a capacity overflow event. The engine decides (abort vs
    /// proactive switch).
    Overflow { kind: OverflowKind },
}

/// Why an access could not proceed. Currently only HTM capacity; the enum
/// exists so that fault-style overflows can be added orthogonally.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverflowKind {
    HtmCapacity,
}

/// Protocol-level events recorded in checked mode (`CheckCfg::enabled`)
/// for the `tmcheck` invariant checkers. Distinct from [`CoreNotice`]:
/// these are observations, not control flow — dropping them changes
/// nothing about the simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtoEvent {
    /// `from` (a probed owner) NACKed `to`'s request for `line` under the
    /// recovery mechanism.
    NackSent {
        from: CoreId,
        to: CoreId,
        line: LineAddr,
    },
    /// `from` sent a wake-up to previously rejected core `to` (commit,
    /// abort, or hlend drained its wake list / the signature waiters).
    WakeSent { from: CoreId, to: CoreId },
}

/// Scheduled network messages and core notices drained by the engine
/// after each call into the memory system.
pub type Outputs = (Vec<(Cycle, NetMsg)>, Vec<(Cycle, CoreNotice)>);

/// Asynchronous notifications to the per-core controllers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoreNotice {
    /// The pending access completed.
    AccessDone { core: CoreId },
    /// The pending access was rejected (recovery NACK or LLC signature).
    AccessRejected { core: CoreId, by_sig: bool },
    /// A probe (or back-invalidation) aborted this core's transaction.
    /// The L1 side is already cleaned up; the controller must unwind the
    /// guest.
    TxAborted { core: CoreId, cause: AbortCause },
    /// A rejecter committed/aborted: retry the parked request.
    Wakeup { core: CoreId },
    /// HLA arbitration result for an earlier [`MemSystem::hla_request`].
    HlaResult { core: CoreId, granted: bool },
}

/// Per-core protocol-side metadata.
#[derive(Clone, Debug)]
struct CoreMeta {
    mode: TxMode,
    prio: Prio,
    /// In-flight fallback critical section (baseline): classifies this
    /// core's non-transactional requests as `ReqMode::Fallback`.
    in_fallback: bool,
    /// Bumped on every abort/commit so late responses are recognized.
    attempt: u64,
    pending: Option<PendingAccess>,
    /// Cores this core has rejected; woken at commit/abort (the green
    /// table in Fig. 2 of the paper).
    wake_list: Vec<CoreId>,
    /// applyingHLA: external probes are blocked while the switch request
    /// is in flight (Fig. 6).
    applying_hla: bool,
    blocked_probes: Vec<NetMsg>,
    /// Holds the HLA arbiter grant (must release at hlend).
    hla_held: bool,
}

#[derive(Clone, Copy, Debug)]
struct PendingAccess {
    line: LineAddr,
    set_r: bool,
    set_w: bool,
    attempt: u64,
}

/// Per-bank end-of-run statistics (parallel vectors in bank order).
#[derive(Clone, Debug, Default)]
pub struct BankRunStats {
    pub hits: Vec<u64>,
    pub misses: Vec<u64>,
    pub queued: Vec<u64>,
    pub queue_peak: Vec<u64>,
}

/// Metric registrations for an `n`-bank LLC: directory queue depth and
/// busy-entry gauges per bank.
pub fn obs_metric_specs(banks: usize) -> Vec<MetricSpec> {
    let mut specs = Vec::with_capacity(banks * 2);
    for b in 0..banks {
        specs.push(MetricSpec::new(
            Metric::BankQueueDepth(b as u16),
            "reqs",
            "requests queued behind busy directory entries",
        ));
        specs.push(MetricSpec::new(
            Metric::BankBusy(b as u16),
            "entries",
            "directory entries with probes or unblock outstanding",
        ));
    }
    specs
}

/// Aggregate protocol statistics for a run.
#[derive(Clone, Debug, Default)]
pub struct MemStats {
    pub rejects: u64,
    pub sig_rejects: u64,
    pub wakeups_sent: u64,
    pub spills: u64,
    pub back_invals: u64,
    pub spec_writebacks: u64,
    pub l1_evictions: u64,
}

/// The complete memory system.
pub struct MemSystem {
    cfg: SystemConfig,
    l1s: Vec<L1>,
    meta: Vec<CoreMeta>,
    banks: Vec<Bank>,
    mesh: Mesh,
    sig_rd: Signature,
    sig_wr: Signature,
    sig_waiters: Vec<CoreId>,
    arbiter: HlaArbiter,
    mutex_line: Option<LineAddr>,
    out_msgs: Vec<(Cycle, NetMsg)>,
    notices: Vec<(Cycle, CoreNotice)>,
    proto_events: Vec<(Cycle, ProtoEvent)>,
    /// Conflict-edge observations for forensics; populated only when
    /// [`MemSystem::set_record_conflicts`] armed them (the engine does so
    /// iff an observability sink is attached). Write-only, like
    /// [`ProtoEvent`]s: dropping them changes nothing.
    conflicts: Vec<(Cycle, ConflictEdge)>,
    record_conflicts: bool,
    /// `MS_TRACE` debug logging, read once at construction — the sites
    /// below run on every access/message, where an env lookup is a
    /// measurable per-event cost.
    dbg_trace: bool,
    pub stats: MemStats,
}

impl MemSystem {
    pub fn new(cfg: SystemConfig) -> MemSystem {
        let n = cfg.num_cores;
        let mesh = Mesh::new(cfg.noc.width, cfg.noc.height, cfg.noc.link_latency);
        assert!(mesh.nodes() >= n, "mesh smaller than core count");
        MemSystem {
            l1s: (0..n).map(|_| L1::new(cfg.mem.l1)).collect(),
            meta: (0..n)
                .map(|_| CoreMeta {
                    mode: TxMode::None,
                    prio: 0,
                    in_fallback: false,
                    attempt: 0,
                    pending: None,
                    wake_list: Vec::new(),
                    applying_hla: false,
                    blocked_probes: Vec::new(),
                    hla_held: false,
                })
                .collect(),
            banks: (0..n).map(|_| Bank::new(cfg.mem.llc_bank, n)).collect(),
            mesh,
            sig_rd: Signature::new(cfg.mem.signature_bits, cfg.mem.signature_hashes),
            sig_wr: Signature::new(cfg.mem.signature_bits, cfg.mem.signature_hashes),
            sig_waiters: Vec::new(),
            arbiter: {
                let mut a = HlaArbiter::new();
                if cfg.check.fault.double_grant {
                    a.inject_double_grant();
                }
                a
            },
            mutex_line: None,
            out_msgs: Vec::new(),
            notices: Vec::new(),
            proto_events: Vec::new(),
            conflicts: Vec::new(),
            record_conflicts: false,
            dbg_trace: std::env::var_os("MS_TRACE").is_some(),
            stats: MemStats::default(),
            cfg,
        }
    }

    // ------------------------------------------------------------------
    // Small helpers
    // ------------------------------------------------------------------

    fn home_bank(&self, line: LineAddr) -> usize {
        (line.0 as usize) % self.banks.len()
    }

    fn send(&mut self, now: Cycle, from: usize, to: usize, msg: NetMsg) {
        let flits = if msg.is_data() {
            self.cfg.noc.data_flits
        } else {
            self.cfg.noc.control_flits
        };
        let at = self.mesh.send(now, from, to, flits);
        self.out_msgs.push((at, msg));
    }

    fn notice(&mut self, at: Cycle, n: CoreNotice) {
        self.notices.push((at, n));
    }

    fn proto_event(&mut self, at: Cycle, ev: ProtoEvent) {
        if self.cfg.check.enabled {
            self.proto_events.push((at, ev));
        }
    }

    fn conflict(&mut self, at: Cycle, edge: ConflictEdge) {
        if self.record_conflicts {
            self.conflicts.push((at, edge));
        }
    }

    /// The rejected requester's follow-up under the configured reject
    /// action, mirroring the engine's `handle_reject` dispatch: RAI only
    /// applies to an in-HTM requester NACKed by a peer; signature rejects
    /// and non-transactional requesters always park.
    fn recovery_action_for(&self, mode: ReqMode, by_sig: bool) -> RecoveryAction {
        match self.cfg.policy.reject_action {
            RejectAction::SelfAbort if mode == ReqMode::Htm && !by_sig => RecoveryAction::Rai,
            RejectAction::RetryLater => RecoveryAction::Rri,
            _ => RecoveryAction::Rwi,
        }
    }

    /// Drain scheduled messages and notices accumulated by the last call.
    pub fn take_outputs(&mut self) -> Outputs {
        (
            std::mem::take(&mut self.out_msgs),
            std::mem::take(&mut self.notices),
        )
    }

    /// Drain checked-mode protocol observations (empty unless
    /// `cfg.check.enabled`).
    pub fn take_proto_events(&mut self) -> Vec<(Cycle, ProtoEvent)> {
        std::mem::take(&mut self.proto_events)
    }

    /// Arm (or disarm) conflict-edge recording for forensics. The engine
    /// arms this when an observability sink is attached; recording is a
    /// pure observation and cannot change protocol decisions.
    pub fn set_record_conflicts(&mut self, on: bool) {
        self.record_conflicts = on;
    }

    /// Drain recorded conflict edges (empty unless armed).
    pub fn take_conflicts(&mut self) -> Vec<(Cycle, ConflictEdge)> {
        std::mem::take(&mut self.conflicts)
    }

    pub fn noc_stats(&self) -> &noc::NocStats {
        self.mesh.stats()
    }

    /// Per-bank end-of-run statistics, in bank order: tag hits, tag
    /// misses, requests that queued, and the queue-depth high-water mark.
    pub fn bank_stats(&self) -> BankRunStats {
        BankRunStats {
            hits: self.banks.iter().map(|b| b.hits).collect(),
            misses: self.banks.iter().map(|b| b.misses).collect(),
            queued: self.banks.iter().map(|b| b.queued).collect(),
            queue_peak: self.banks.iter().map(|b| b.queue_peak).collect(),
        }
    }

    /// Cores currently in (HTM, lock-transaction, fallback) states, for
    /// gauge sampling.
    pub fn mode_counts(&self) -> (u64, u64, u64) {
        let mut htm = 0;
        let mut lock = 0;
        let mut fallback = 0;
        for m in &self.meta {
            match m.mode {
                TxMode::Htm => htm += 1,
                TxMode::LockTl | TxMode::LockStl => lock += 1,
                TxMode::None if m.in_fallback => fallback += 1,
                TxMode::None => {}
            }
        }
        (htm, lock, fallback)
    }

    /// Append one observability sample of the memory system's live state:
    /// per-bank directory queue depths and busy-entry counts, plus the
    /// NoC aggregate and per-link traffic counters. Read-only — sampling
    /// can never perturb the simulation.
    pub fn obs_sample(&self, out: &mut Vec<(Metric, u64)>) {
        for (i, b) in self.banks.iter().enumerate() {
            out.push((Metric::BankQueueDepth(i as u16), b.queue_depth() as u64));
            out.push((Metric::BankBusy(i as u16), b.busy_entries() as u64));
        }
        let ns = self.mesh.stats();
        out.push((Metric::NocMessages, ns.messages));
        out.push((Metric::NocQueueCycles, ns.queue_cycles));
        for (l, &busy) in ns.link_busy.iter().enumerate() {
            if busy > 0 {
                out.push((Metric::LinkBusy(l as u16), busy));
            }
        }
    }

    /// Mark the fallback-lock line so conflicts on it classify as `mutex`.
    pub fn set_mutex_line(&mut self, line: LineAddr) {
        self.mutex_line = Some(line);
    }

    pub fn core_mode(&self, core: CoreId) -> TxMode {
        self.meta[core].mode
    }

    pub fn set_prio(&mut self, core: CoreId, prio: Prio) {
        if !self.meta[core].mode.is_lock() {
            self.meta[core].prio = prio;
        }
    }

    pub fn set_fallback(&mut self, core: CoreId, active: bool) {
        self.meta[core].in_fallback = active;
    }

    pub fn prio_of(&self, core: CoreId) -> Prio {
        self.meta[core].prio
    }

    /// Transaction read/write footprint currently tracked in the L1.
    pub fn tx_footprint(&self, core: CoreId) -> usize {
        self.l1s[core].tx_footprint()
    }

    /// (read-set lines, write-set lines) currently tracked in the L1.
    /// Write-set lines also carry R if read; they count once per class.
    pub fn tx_set_sizes(&self, core: CoreId) -> (u64, u64) {
        let mut r = 0;
        let mut w = 0;
        for l in self.l1s[core].tx_lines() {
            if l.w {
                w += 1;
            } else if l.r {
                r += 1;
            }
        }
        (r, w)
    }

    fn req_mode(&self, core: CoreId) -> ReqMode {
        match self.meta[core].mode {
            TxMode::Htm => ReqMode::Htm,
            TxMode::LockTl | TxMode::LockStl => ReqMode::LockTx,
            TxMode::None => {
                if self.meta[core].in_fallback {
                    ReqMode::Fallback
                } else {
                    ReqMode::NonTx
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Mode transitions (engine-called)
    // ------------------------------------------------------------------

    pub fn begin_htm(&mut self, core: CoreId, initial_prio: Prio) {
        let m = &mut self.meta[core];
        debug_assert_eq!(m.mode, TxMode::None);
        debug_assert_eq!(self.l1s[core].tx_footprint(), 0);
        m.mode = TxMode::Htm;
        m.prio = initial_prio;
    }

    /// Commit an HTM transaction: clear bits, keep speculative lines as M,
    /// wake everyone this core rejected.
    pub fn commit_htm(&mut self, now: Cycle, core: CoreId) {
        debug_assert_eq!(self.meta[core].mode, TxMode::Htm);
        self.l1s[core].commit_tx();
        self.meta[core].mode = TxMode::None;
        self.meta[core].attempt += 1;
        self.meta[core].pending = None;
        self.drain_wake_list(now, core);
    }

    /// Abort the core's transaction from the engine side (self-abort on
    /// reject, explicit xabort, fault, capacity abort, failed switch).
    pub fn abort_locally(&mut self, now: Cycle, core: CoreId) {
        debug_assert!(self.meta[core].mode.is_tx());
        debug_assert!(
            !self.meta[core].mode.is_lock(),
            "lock transactions cannot abort"
        );
        self.l1s[core].abort_tx();
        self.meta[core].mode = TxMode::None;
        self.meta[core].attempt += 1;
        self.meta[core].pending = None;
        self.drain_wake_list(now, core);
    }

    /// Enter HTMLock mode. For TL the caller has already acquired the
    /// software lock (and, with switchingMode, the HLA grant); for STL the
    /// grant arrived via [`CoreNotice::HlaResult`]. Keeps existing
    /// transaction bits: an STL switch carries its read/write sets along.
    pub fn enter_lock(&mut self, core: CoreId, stl: bool) {
        let m = &mut self.meta[core];
        m.mode = if stl { TxMode::LockStl } else { TxMode::LockTl };
        m.prio = PRIO_LOCK;
    }

    /// Leave HTMLock mode (`hlend`): clear bits (lines stay), clear the
    /// overflow signatures, wake signature waiters and rejected cores,
    /// release the HLA grant if held.
    pub fn exit_lock(&mut self, now: Cycle, core: CoreId) {
        debug_assert!(self.meta[core].mode.is_lock());
        self.l1s[core].commit_tx();
        self.meta[core].mode = TxMode::None;
        self.meta[core].prio = 0;
        self.meta[core].attempt += 1;
        self.meta[core].pending = None;
        if !self.sig_rd.is_empty() || !self.sig_wr.is_empty() {
            self.sig_rd.clear();
            self.sig_wr.clear();
        }
        let waiters = std::mem::take(&mut self.sig_waiters);
        for w in waiters {
            if self.cfg.check.fault.drop_wakeups {
                continue;
            }
            self.stats.wakeups_sent += 1;
            self.proto_event(now, ProtoEvent::WakeSent { from: core, to: w });
            self.send(now, core, w, NetMsg::Wakeup { to: w });
        }
        self.drain_wake_list(now, core);
        if self.meta[core].hla_held {
            self.meta[core].hla_held = false;
            self.send(now, core, 0, NetMsg::HlaRel { core });
        }
    }

    /// Request HLA authorization (TL entry under switchingMode, or an STL
    /// proactive switch). The result arrives as [`CoreNotice::HlaResult`].
    /// For STL the core enters the applyingHLA state: external probes are
    /// blocked until [`MemSystem::finish_hla`].
    pub fn hla_request(&mut self, now: Cycle, core: CoreId, stl: bool) {
        if stl {
            self.meta[core].applying_hla = true;
        }
        self.send(now, core, 0, NetMsg::HlaReq { core, stl });
    }

    /// Complete an STL switch attempt: unblock and replay deferred probes.
    /// On grant the caller must also `enter_lock(core, true)` *before*
    /// calling this, so replayed probes see lock-mode priority.
    pub fn finish_hla(&mut self, now: Cycle, core: CoreId, granted: bool) {
        if granted {
            self.meta[core].hla_held = true;
        }
        self.meta[core].applying_hla = false;
        let blocked = std::mem::take(&mut self.meta[core].blocked_probes);
        for p in blocked {
            self.l1_probe(now, core, p);
        }
    }

    fn drain_wake_list(&mut self, now: Cycle, core: CoreId) {
        let list = std::mem::take(&mut self.meta[core].wake_list);
        for w in list {
            if self.cfg.check.fault.drop_wakeups {
                continue;
            }
            self.stats.wakeups_sent += 1;
            self.proto_event(now, ProtoEvent::WakeSent { from: core, to: w });
            self.send(now, core, w, NetMsg::Wakeup { to: w });
        }
    }

    // ------------------------------------------------------------------
    // Core-side access path
    // ------------------------------------------------------------------

    /// Perform a load/store for `core` on the line containing the access.
    /// Word-level value handling lives in the engine; the protocol works
    /// at line granularity.
    pub fn access(
        &mut self,
        now: Cycle,
        core: CoreId,
        line: LineAddr,
        kind: AccessKind,
    ) -> AccessResult {
        if self.dbg_trace {
            eprintln!(
                "  ms[{now}] access c{core} {line:?} {kind:?} mode={:?}",
                self.meta[core].mode
            );
        }
        debug_assert!(
            self.meta[core].pending.is_none(),
            "second outstanding access"
        );
        let mode = self.meta[core].mode;
        let is_tx = mode.is_tx();
        let hit_at = now + self.cfg.mem.l1_hit;

        if let Some(l) = self.l1s[core].lookup(line) {
            let state = l.state;
            let had_w = l.w;
            match kind {
                AccessKind::Load => {
                    if is_tx {
                        self.l1s[core].mark_tx(line, true, false);
                    }
                    self.l1s[core].touch(line);
                    return AccessResult::Done { at: hit_at };
                }
                AccessKind::Store => match state {
                    Mesi::Modified | Mesi::Exclusive => {
                        if state == Mesi::Exclusive {
                            self.l1s[core].lookup_mut(line).unwrap().state = Mesi::Modified;
                        }
                        if mode == TxMode::Htm && !had_w {
                            if state == Mesi::Modified {
                                // First speculative write to a dirty line:
                                // push the pre-transaction value home so an
                                // abort can simply invalidate (timing-only
                                // in the decoupled value model).
                                self.stats.spec_writebacks += 1;
                                let home = self.home_bank(line);
                                self.send(now, core, home, NetMsg::SpecWb { core, line });
                            }
                            self.l1s[core].mark_tx(line, false, true);
                        } else if mode.is_lock() {
                            self.l1s[core].mark_tx(line, false, true);
                        }
                        self.l1s[core].touch(line);
                        return AccessResult::Done { at: hit_at };
                    }
                    Mesi::Shared => {
                        // Upgrade: GetM while retaining the S copy.
                        return self.issue_request(now, core, line, ReqKind::GetM, kind, true);
                    }
                },
            }
        }

        // Miss: make room, then request.
        match self.make_room(now, core, line) {
            Ok(()) => {}
            Err(kind) => return AccessResult::Overflow { kind },
        }
        let rk = match kind {
            AccessKind::Load => ReqKind::GetS,
            AccessKind::Store => ReqKind::GetM,
        };
        self.issue_request(now, core, line, rk, kind, false)
    }

    /// Ensure a way is free for `line` in `core`'s L1, evicting or
    /// spilling as needed. Errors with an overflow event in HTM mode.
    fn make_room(&mut self, now: Cycle, core: CoreId, line: LineAddr) -> Result<(), OverflowKind> {
        match self.l1s[core].victim_for(line) {
            Victim::Free => Ok(()),
            Victim::Evict(v) => {
                self.evict_line(now, core, v.line, v.state);
                Ok(())
            }
            Victim::Overflow(v) => {
                let mode = self.meta[core].mode;
                if mode.is_lock() {
                    // HTMLock spill: set membership moves into the LLC
                    // signatures (Fig. 5 (2)).
                    self.stats.spills += 1;
                    let home = self.home_bank(v.line);
                    self.send(
                        now,
                        core,
                        home,
                        NetMsg::SigAdd {
                            line: v.line,
                            read: v.r,
                            write: v.w,
                        },
                    );
                    self.evict_line(now, core, v.line, v.state);
                    Ok(())
                } else {
                    debug_assert_eq!(mode, TxMode::Htm, "overflow with tx bits requires tx mode");
                    Err(OverflowKind::HtmCapacity)
                }
            }
        }
    }

    fn evict_line(&mut self, now: Cycle, core: CoreId, line: LineAddr, state: Mesi) {
        self.stats.l1_evictions += 1;
        self.l1s[core].remove(line);
        let home = self.home_bank(line);
        let msg = match state {
            Mesi::Modified => NetMsg::PutM { core, line },
            Mesi::Exclusive | Mesi::Shared => NetMsg::PutClean { core, line },
        };
        self.send(now, core, home, msg);
    }

    fn issue_request(
        &mut self,
        now: Cycle,
        core: CoreId,
        line: LineAddr,
        rk: ReqKind,
        kind: AccessKind,
        _upgrade: bool,
    ) -> AccessResult {
        let mode = self.meta[core].mode;
        let req = ReqInfo {
            core,
            kind: rk,
            line,
            prio: self.meta[core].prio,
            mode: self.req_mode(core),
            attempt: self.meta[core].attempt,
        };
        self.meta[core].pending = Some(PendingAccess {
            line,
            set_r: kind == AccessKind::Load && mode.is_tx(),
            set_w: kind == AccessKind::Store && mode.is_tx(),
            attempt: self.meta[core].attempt,
        });
        let home = self.home_bank(line);
        self.send(now, core, home, NetMsg::Req(req));
        AccessResult::Pending
    }

    /// Cancel the pending access (engine aborted/redirected the guest).
    pub fn cancel_pending(&mut self, core: CoreId) {
        self.meta[core].pending = None;
    }

    /// True if a request is in flight for this core.
    pub fn has_pending(&self, core: CoreId) -> bool {
        self.meta[core].pending.is_some()
    }

    // ------------------------------------------------------------------
    // Message dispatch
    // ------------------------------------------------------------------

    /// Deliver a previously scheduled NoC message.
    pub fn handle_msg(&mut self, now: Cycle, msg: NetMsg) {
        if self.dbg_trace {
            eprintln!("  ms[{now}] {msg:?}");
        }
        match msg {
            NetMsg::Req(req) => self.bank_req(now, req),
            NetMsg::PutM { core, line } | NetMsg::PutClean { core, line } => {
                self.bank_put(now, core, line);
            }
            NetMsg::SpecWb { .. } => { /* timing-only */ }
            NetMsg::SigAdd { line, read, write } => {
                if read {
                    self.sig_rd.add(line);
                }
                if write {
                    self.sig_wr.add(line);
                }
            }
            NetMsg::FwdGetS { to, .. } | NetMsg::Inv { to, .. } => self.l1_probe(now, to, msg),
            NetMsg::ProbeRsp { from, req, rsp } => self.bank_probe_rsp(now, from, req, rsp),
            NetMsg::Grant {
                to,
                line,
                state,
                with_data,
                attempt,
            } => {
                self.l1_grant(now, to, line, state, with_data, attempt);
            }
            NetMsg::DirectData {
                to,
                line,
                state,
                attempt,
            } => {
                self.l1_grant(now, to, line, state, true, attempt);
            }
            NetMsg::RspReject {
                to,
                line,
                by_sig,
                attempt,
            } => {
                self.l1_reject(now, to, line, by_sig, attempt);
            }
            NetMsg::Unblock { core, line } => self.bank_unblock(now, core, line),
            NetMsg::Wakeup { to } => self.notice(now, CoreNotice::Wakeup { core: to }),
            NetMsg::HlaReq { core, stl } => {
                let decision = self.arbiter.request(core, stl);
                match decision {
                    HlaDecision::Granted => {
                        self.send(
                            now + 2,
                            0,
                            core,
                            NetMsg::HlaRsp {
                                to: core,
                                granted: true,
                            },
                        );
                    }
                    HlaDecision::Denied => {
                        self.send(
                            now + 2,
                            0,
                            core,
                            NetMsg::HlaRsp {
                                to: core,
                                granted: false,
                            },
                        );
                    }
                    HlaDecision::Queued => { /* grant sent at release */ }
                }
            }
            NetMsg::HlaRel { core } => {
                if let Some(tl) = self.arbiter.release(core) {
                    self.send(
                        now + 2,
                        0,
                        tl,
                        NetMsg::HlaRsp {
                            to: tl,
                            granted: true,
                        },
                    );
                }
            }
            NetMsg::HlaRsp { to, granted } => {
                self.notice(now, CoreNotice::HlaResult { core: to, granted });
            }
        }
    }

    // ------------------------------------------------------------------
    // Directory (home bank) side
    // ------------------------------------------------------------------

    /// Block the entry until `core`'s unblock arrives — consuming an
    /// unblock that raced ahead of the probe acknowledgement (possible in
    /// the direct-response topology, where the requester may be served
    /// before the home finishes the exchange).
    fn expect_unblock(&mut self, at: Cycle, b: usize, line: LineAddr, core: CoreId) {
        if self.dbg_trace {
            eprintln!(
                "  ms[{at}] expect_unblock bank{b} {line:?} core{core} early={:?}",
                self.banks[b].entry(line).early_unblock
            );
        }
        let entry = self.banks[b].entry(line);
        if entry.early_unblock.take() == Some(core) {
            // Already confirmed: the exchange is complete; serve the
            // next queued request right away.
            if let Some(next) = self.banks[b].entry(line).queue.pop_front() {
                self.bank_serve(at, b, next);
            } else {
                self.banks[b].gc_entry(line);
            }
            return;
        }
        self.banks[b].entry(line).unblock_wait = Some(core);
    }

    /// Send a grant and block the entry until the requester's unblock.
    fn send_grant(
        &mut self,
        at: Cycle,
        b: usize,
        req: &ReqInfo,
        state: GrantState,
        with_data: bool,
    ) {
        let line = req.line;
        self.expect_unblock(at, b, line, req.core);
        self.send(
            at,
            b,
            req.core,
            NetMsg::Grant {
                to: req.core,
                line,
                state,
                with_data,
                attempt: req.attempt,
            },
        );
    }

    fn bank_req(&mut self, now: Cycle, req: ReqInfo) {
        let b = self.home_bank(req.line);
        if self.banks[b].is_busy(req.line) {
            self.banks[b].enqueue(req.line, req);
            return;
        }
        self.bank_serve(now, b, req);
    }

    /// Serve `first` and then keep draining the line's deferred queue for
    /// as long as requests complete without going pending (direct grants
    /// and signature rejects must not strand queued requests).
    fn bank_serve(&mut self, now: Cycle, b: usize, first: ReqInfo) {
        let mut next = Some(first);
        while let Some(req) = next {
            if self.bank_req_active(now, b, req) {
                return; // probes outstanding; finalize_pending continues
            }
            next = self.banks[b].entry(req.line).queue.pop_front();
            if next.is_none() {
                self.banks[b].gc_entry(req.line);
            }
        }
    }

    /// Process a request that is now at the head of the line's
    /// serialization. Returns true if it left a pending (probe) exchange.
    fn bank_req_active(&mut self, now: Cycle, b: usize, req: ReqInfo) -> bool {
        let line = req.line;

        // HTMLock overflow-signature checks (§III-B). Only HTM-mode
        // requests are filtered: the lock transaction owns the data, and
        // plain accesses racing the lock are program-level races.
        if req.mode == ReqMode::Htm && !(self.sig_rd.is_empty() && self.sig_wr.is_empty()) {
            let state = self.banks[b].entry(line).state;
            let no_copies = state.is_none();
            let wr_hit = self.sig_wr.test(line);
            let rd_hit = self.sig_rd.test(line);
            let reject = wr_hit || (rd_hit && (req.kind == ReqKind::GetM || no_copies));
            if reject {
                self.stats.sig_rejects += 1;
                if !self.sig_waiters.contains(&req.core) {
                    self.sig_waiters.push(req.core);
                }
                if self.record_conflicts {
                    // The signatures belong to the (single) lock-mode
                    // transaction; attribute the reject to it. Fall back
                    // to a self-edge if it already exited.
                    let holder = (0..self.meta.len())
                        .find(|&c| self.meta[c].mode.is_lock())
                        .unwrap_or(req.core);
                    let action = self.recovery_action_for(req.mode, true);
                    self.conflict(
                        now,
                        ConflictEdge {
                            attacker: holder,
                            victim: req.core,
                            line,
                            attacker_prio: PRIO_LOCK,
                            victim_prio: req.prio,
                            resolution: ConflictResolution::SigReject,
                            action,
                        },
                    );
                }
                let at = now + self.cfg.mem.llc_hit;
                self.send(
                    at,
                    b,
                    req.core,
                    NetMsg::RspReject {
                        to: req.core,
                        line,
                        by_sig: true,
                        attempt: req.attempt,
                    },
                );
                return false;
            }
        }

        // LLC tag access: capacity + inclusivity model.
        let dir_snapshot: Vec<LineAddr> = self.banks[b]
            .dir
            .iter()
            .filter(|(_, e)| e.busy())
            .map(|(l, _)| *l)
            .collect();
        let (hit, evicted) =
            self.banks[b].tag_access(line, |l| !dir_snapshot.contains(&l) && l != line);
        if let Some(ev) = evicted {
            self.back_invalidate(now, b, ev);
        }
        let t = now + self.cfg.mem.llc_hit + if hit { 0 } else { self.cfg.mem.mem_latency };

        let state = self.banks[b].entry(line).state;
        match state {
            None => {
                let gs = match req.kind {
                    ReqKind::GetS => GrantState::Exclusive,
                    ReqKind::GetM => GrantState::Modified,
                };
                self.banks[b].entry(line).state = Some(DirState::Owned(req.core));
                self.send_grant(t, b, &req, gs, true);
                true
            }
            Some(DirState::Shared(mut sharers)) => match req.kind {
                ReqKind::GetS => {
                    sharers.insert(req.core);
                    self.banks[b].entry(line).state = Some(DirState::Shared(sharers));
                    self.send_grant(t, b, &req, GrantState::Shared, true);
                    true
                }
                ReqKind::GetM => {
                    let was_sharer = sharers.contains(req.core);
                    let mut others = sharers;
                    others.remove(req.core);
                    if others.is_empty() {
                        self.banks[b].entry(line).state = Some(DirState::Owned(req.core));
                        self.send_grant(t, b, &req, GrantState::Modified, !was_sharer);
                        true
                    } else {
                        for c in others.iter() {
                            self.send(
                                t,
                                b,
                                c,
                                NetMsg::Inv {
                                    to: c,
                                    req,
                                    back_inval: false,
                                },
                            );
                        }
                        self.banks[b].entry(line).pending = Some(Pending {
                            req,
                            waiting: others,
                            rejected: CoreSet::empty(),
                            invalidated: CoreSet::empty(),
                            downgraded: CoreSet::empty(),
                            any_abort: false,
                            prior: Some(DirState::Shared(sharers)),
                        });
                        true
                    }
                }
            },
            Some(DirState::Owned(owner)) if owner == req.core => {
                // The recorded owner dropped the line silently (abort
                // invalidation) and is re-requesting it: directory info is
                // stale; grant directly.
                let gs = match req.kind {
                    ReqKind::GetS => GrantState::Exclusive,
                    ReqKind::GetM => GrantState::Modified,
                };
                self.send_grant(t, b, &req, gs, true);
                true
            }
            Some(DirState::Owned(owner)) => {
                let probe = match req.kind {
                    ReqKind::GetS => NetMsg::FwdGetS { to: owner, req },
                    ReqKind::GetM => NetMsg::Inv {
                        to: owner,
                        req,
                        back_inval: false,
                    },
                };
                self.send(t, b, owner, probe);
                self.banks[b].entry(line).pending = Some(Pending {
                    req,
                    waiting: CoreSet::single(owner),
                    rejected: CoreSet::empty(),
                    invalidated: CoreSet::empty(),
                    downgraded: CoreSet::empty(),
                    any_abort: false,
                    prior: Some(DirState::Owned(owner)),
                });
                true
            }
        }
    }

    /// Inclusive-LLC eviction: push the line out of every L1. The probes
    /// are fire-and-forget; directory state is torn down immediately.
    fn back_invalidate(&mut self, now: Cycle, b: usize, line: LineAddr) {
        self.stats.back_invals += 1;
        let state = self.banks[b].entry(line).state.take();
        let holders: Vec<CoreId> = match state {
            Some(DirState::Shared(s)) => s.iter().collect(),
            Some(DirState::Owned(o)) => vec![o],
            None => vec![],
        };
        for c in holders {
            // Dummy ReqInfo: back-invalidations carry no requester.
            let req = ReqInfo {
                core: c,
                kind: ReqKind::GetM,
                line,
                prio: 0,
                mode: ReqMode::NonTx,
                attempt: 0,
            };
            self.send(
                now,
                b,
                c,
                NetMsg::Inv {
                    to: c,
                    req,
                    back_inval: true,
                },
            );
        }
        self.banks[b].gc_entry(line);
    }

    /// Writeback / eviction notice. While a probe for the same line is
    /// outstanding to this core, the Put substitutes for its response.
    fn bank_put(&mut self, now: Cycle, core: CoreId, line: LineAddr) {
        let b = self.home_bank(line);
        let entry = self.banks[b].entry(line);
        if let Some(p) = entry.pending.as_mut() {
            if p.waiting.contains(core) {
                p.waiting.remove(core);
                p.invalidated.insert(core);
                if p.waiting.is_empty() {
                    self.finalize_pending(now, b, line);
                }
                return;
            }
        }
        match entry.state {
            Some(DirState::Owned(o)) if o == core => {
                entry.state = None;
            }
            Some(DirState::Shared(mut s)) if s.contains(core) => {
                s.remove(core);
                entry.state = if s.is_empty() {
                    None
                } else {
                    Some(DirState::Shared(s))
                };
            }
            _ => { /* stale Put from a core already probed out: drop */ }
        }
        self.banks[b].gc_entry(line);
    }

    /// The requester confirmed grant receipt: unblock the entry and serve
    /// the next queued request.
    fn bank_unblock(&mut self, now: Cycle, core: CoreId, line: LineAddr) {
        let b = self.home_bank(line);
        let entry = self.banks[b].entry(line);
        if entry.unblock_wait != Some(core) {
            // Direct-response race: the requester confirmed before the
            // owner's ack reached us. Remember it for expect_unblock.
            if self.dbg_trace {
                eprintln!(
                    "  ms[{now}] EARLY unblock {line:?} core{core} wait={:?} pending={}",
                    entry.unblock_wait,
                    entry.pending.is_some()
                );
            }
            debug_assert!(
                self.cfg.mem.direct_rsp && entry.pending.is_some(),
                "unexpected unblock from {core} for {line:?}"
            );
            entry.early_unblock = Some(core);
            return;
        }
        entry.unblock_wait = None;
        if let Some(next) = self.banks[b].entry(line).queue.pop_front() {
            self.bank_serve(now, b, next);
        } else {
            self.banks[b].gc_entry(line);
        }
    }

    fn bank_probe_rsp(&mut self, now: Cycle, from: CoreId, req: ReqInfo, rsp: L1Rsp) {
        let b = self.home_bank(req.line);
        let line = req.line;
        let Some(p) = self.banks[b].entry(line).pending.as_mut() else {
            return; // response to an already-finalized exchange (stale)
        };
        if !p.waiting.contains(from) {
            return;
        }
        p.waiting.remove(from);
        match rsp {
            L1Rsp::InvAck { had_line, aborted } => {
                if had_line {
                    p.invalidated.insert(from);
                }
                p.any_abort |= aborted;
            }
            L1Rsp::DowngradeAck { .. } => {
                p.downgraded.insert(from);
            }
            L1Rsp::Reject => {
                p.rejected.insert(from);
            }
        }
        if p.waiting.is_empty() {
            self.finalize_pending(now, b, line);
        }
    }

    /// All probe responses are in: grant or reject, restore state, and
    /// serve the next queued request.
    fn finalize_pending(&mut self, now: Cycle, b: usize, line: LineAddr) {
        let p = self.banks[b]
            .entry(line)
            .pending
            .take()
            .expect("finalize without pending");
        let req = p.req;

        if !p.rejected.is_empty() {
            // Recovery mechanism: restore the pre-request state minus any
            // copies that were invalidated before the reject arrived.
            let restored = match p.prior {
                Some(DirState::Owned(o)) => {
                    debug_assert!(p.rejected.contains(o));
                    Some(DirState::Owned(o))
                }
                Some(DirState::Shared(s)) => {
                    let mut s2 = s;
                    for c in p.invalidated.iter() {
                        s2.remove(c);
                    }
                    if s2.is_empty() {
                        None
                    } else {
                        Some(DirState::Shared(s2))
                    }
                }
                None => None,
            };
            self.banks[b].entry(line).state = restored;
            self.stats.rejects += 1;
            if !self.cfg.mem.direct_rsp {
                self.send(
                    now,
                    b,
                    req.core,
                    NetMsg::RspReject {
                        to: req.core,
                        line,
                        by_sig: false,
                        attempt: req.attempt,
                    },
                );
            }
        } else {
            match req.kind {
                ReqKind::GetS => {
                    // If the owner merely downgraded it remains a sharer;
                    // if it invalidated (abort / stale), requester gets E.
                    let prior_owner = match p.prior {
                        Some(DirState::Owned(o)) => Some(o),
                        _ => None,
                    };
                    // The owner keeps an S copy only if it actually
                    // downgraded; an InvAck (abort or stale eviction)
                    // means the copy is gone even when `had_line` was
                    // false, and the requester must be served from the
                    // LLC with an exclusive grant.
                    let owner_kept = prior_owner
                        .map(|o| p.downgraded.contains(o))
                        .unwrap_or(false);
                    if owner_kept {
                        let mut s = CoreSet::empty();
                        s.insert(prior_owner.unwrap());
                        s.insert(req.core);
                        self.banks[b].entry(line).state = Some(DirState::Shared(s));
                        if self.cfg.mem.direct_rsp {
                            // The owner already sent the data directly;
                            // just wait for the requester's unblock.
                            self.expect_unblock(now, b, line, req.core);
                        } else {
                            self.send_grant(now, b, &req, GrantState::Shared, true);
                        }
                    } else {
                        self.banks[b].entry(line).state = Some(DirState::Owned(req.core));
                        self.send_grant(now, b, &req, GrantState::Exclusive, true);
                    }
                }
                ReqKind::GetM => {
                    let was_sharer = match p.prior {
                        Some(DirState::Shared(s)) => s.contains(req.core),
                        _ => false,
                    };
                    self.banks[b].entry(line).state = Some(DirState::Owned(req.core));
                    self.send_grant(now, b, &req, GrantState::Modified, !was_sharer);
                }
            }
            // The entry stays blocked until the unblock arrives; queued
            // requests are served then.
            return;
        }

        // Rejected: no grant in flight; serve the next queued request.
        if let Some(next) = self.banks[b].entry(line).queue.pop_front() {
            self.bank_serve(now, b, next);
        } else {
            self.banks[b].gc_entry(line);
        }
    }

    // ------------------------------------------------------------------
    // L1 probe / response side
    // ------------------------------------------------------------------

    fn l1_probe(&mut self, now: Cycle, core: CoreId, msg: NetMsg) {
        let (req, is_inv, back_inval) = match msg {
            NetMsg::Inv {
                req, back_inval, ..
            } => (req, true, back_inval),
            NetMsg::FwdGetS { req, .. } => (req, false, false),
            _ => unreachable!("l1_probe on non-probe"),
        };
        let line = req.line;
        let home = self.home_bank(line);

        if self.meta[core].applying_hla && !back_inval {
            self.meta[core].blocked_probes.push(msg);
            return;
        }

        let Some(l) = self.l1s[core].lookup(line) else {
            if !back_inval {
                self.send(
                    now,
                    core,
                    home,
                    NetMsg::ProbeRsp {
                        from: core,
                        req,
                        rsp: L1Rsp::InvAck {
                            had_line: false,
                            aborted: false,
                        },
                    },
                );
            }
            return;
        };
        let (r, w, state) = (l.r, l.w, l.state);
        // Checker-validation mutation: pretend transactional bits are
        // invisible to the protocol, so conflicting requests are served as
        // plain coherence traffic and both transactions run to commit.
        let blind = self.cfg.check.fault.ignore_conflicts;
        let conflict = (if is_inv { r || w } else { w }) && !blind;
        let mode = self.meta[core].mode;

        if back_inval {
            if r || w {
                if mode.is_lock() {
                    // Lock-transaction line forced out: tracking moves to
                    // the signatures, the transaction survives.
                    self.stats.spills += 1;
                    self.send(
                        now,
                        core,
                        home,
                        NetMsg::SigAdd {
                            line,
                            read: r,
                            write: w,
                        },
                    );
                } else {
                    debug_assert_eq!(mode, TxMode::Htm);
                    self.abort_from_protocol(now, core, AbortCause::Of);
                }
            }
            self.l1s[core].remove(line);
            return;
        }

        if !conflict {
            if is_inv {
                self.l1s[core].remove(line);
                self.send(
                    now,
                    core,
                    home,
                    NetMsg::ProbeRsp {
                        from: core,
                        req,
                        rsp: L1Rsp::InvAck {
                            had_line: true,
                            aborted: false,
                        },
                    },
                );
            } else {
                // Downgrade M/E -> S (R bit, if any, survives: readers
                // sharing a line is not a conflict).
                let was_m = state == Mesi::Modified;
                self.l1s[core].lookup_mut(line).unwrap().state = Mesi::Shared;
                if self.cfg.mem.direct_rsp {
                    // Direct topology: push the data straight to the
                    // requester; the home gets a control ack in parallel.
                    self.send(
                        now,
                        core,
                        req.core,
                        NetMsg::DirectData {
                            to: req.core,
                            line,
                            state: GrantState::Shared,
                            attempt: req.attempt,
                        },
                    );
                }
                self.send(
                    now,
                    core,
                    home,
                    NetMsg::ProbeRsp {
                        from: core,
                        req,
                        rsp: L1Rsp::DowngradeAck { dirty: was_m },
                    },
                );
            }
            return;
        }

        // Conflict: arbitrate (Fig. 4).
        debug_assert!(mode.is_tx(), "conflict bits outside a transaction");
        let winner = arbitrate(&self.cfg.policy, &req, mode, self.meta[core].prio, core);
        match winner {
            Winner::Victim => {
                if self.cfg.check.fault.drop_nack {
                    // Checker-validation mutation: the arbitration loser
                    // "forgets" to report the conflict — it keeps its line
                    // and speculative state but acknowledges the probe as
                    // if it held nothing, so the directory grants the
                    // requester an exclusive copy alongside this one.
                    self.send(
                        now,
                        core,
                        home,
                        NetMsg::ProbeRsp {
                            from: core,
                            req,
                            rsp: L1Rsp::InvAck {
                                had_line: false,
                                aborted: false,
                            },
                        },
                    );
                    return;
                }
                // The wake-up table is only built when the system uses
                // wait-for-wakeup rejects (the paper notes wake-up support
                // is optional hardware; RAI/RRI omit it).
                if self.cfg.policy.reject_action == RejectAction::WaitWakeup
                    && !self.meta[core].wake_list.contains(&req.core)
                {
                    self.meta[core].wake_list.push(req.core);
                }
                self.proto_event(
                    now,
                    ProtoEvent::NackSent {
                        from: core,
                        to: req.core,
                        line,
                    },
                );
                let action = self.recovery_action_for(req.mode, false);
                self.conflict(
                    now,
                    ConflictEdge {
                        attacker: core,
                        victim: req.core,
                        line,
                        attacker_prio: self.meta[core].prio,
                        victim_prio: req.prio,
                        resolution: ConflictResolution::Nack,
                        action,
                    },
                );
                if self.cfg.mem.direct_rsp {
                    // §III-A: the reject travels straight to the
                    // requester; the home still learns via the probe
                    // response so it can restore the directory state.
                    self.send(
                        now,
                        core,
                        req.core,
                        NetMsg::RspReject {
                            to: req.core,
                            line,
                            by_sig: false,
                            attempt: req.attempt,
                        },
                    );
                }
                self.send(
                    now,
                    core,
                    home,
                    NetMsg::ProbeRsp {
                        from: core,
                        req,
                        rsp: L1Rsp::Reject,
                    },
                );
            }
            Winner::Requester => {
                let cause = self.classify_conflict(&req);
                self.conflict(
                    now,
                    ConflictEdge {
                        attacker: req.core,
                        victim: core,
                        line,
                        attacker_prio: req.prio,
                        victim_prio: self.meta[core].prio,
                        resolution: ConflictResolution::Abort(cause),
                        action: RecoveryAction::None,
                    },
                );
                self.abort_from_protocol(now, core, cause);
                // The abort invalidated speculative (W) lines; an R-only
                // line survives the abort and must still be invalidated
                // for an Inv probe.
                let still_there = self.l1s[core].lookup(line).is_some();
                if still_there {
                    debug_assert!(is_inv, "FwdGetS conflicts require W, which abort drops");
                    self.l1s[core].remove(line);
                }
                self.send(
                    now,
                    core,
                    home,
                    NetMsg::ProbeRsp {
                        from: core,
                        req,
                        rsp: L1Rsp::InvAck {
                            had_line: still_there,
                            aborted: true,
                        },
                    },
                );
            }
        }
    }

    fn classify_conflict(&self, req: &ReqInfo) -> AbortCause {
        match req.mode {
            ReqMode::Htm => AbortCause::Mc,
            ReqMode::LockTx => AbortCause::Lock,
            ReqMode::Fallback => AbortCause::Mutex,
            ReqMode::NonTx => {
                if Some(req.line) == self.mutex_line {
                    AbortCause::Mutex
                } else {
                    AbortCause::NonTran
                }
            }
        }
    }

    /// A probe or back-invalidation killed this core's HTM transaction.
    fn abort_from_protocol(&mut self, now: Cycle, core: CoreId, cause: AbortCause) {
        debug_assert_eq!(self.meta[core].mode, TxMode::Htm);
        self.l1s[core].abort_tx();
        self.meta[core].mode = TxMode::None;
        self.meta[core].attempt += 1;
        self.meta[core].pending = None;
        self.drain_wake_list(now, core);
        self.notice(now, CoreNotice::TxAborted { core, cause });
    }

    fn l1_grant(
        &mut self,
        now: Cycle,
        core: CoreId,
        line: LineAddr,
        state: GrantState,
        with_data: bool,
        attempt: u64,
    ) {
        // Confirm receipt so the directory can move to the stable state
        // (Fig. 3's unblock message).
        let home = self.home_bank(line);
        self.send(now, core, home, NetMsg::Unblock { core, line });
        let mesi = match state {
            GrantState::Shared => Mesi::Shared,
            GrantState::Exclusive => Mesi::Exclusive,
            GrantState::Modified => Mesi::Modified,
        };
        let current = self.meta[core].attempt;
        let pending = self.meta[core].pending;
        // Fresh only if this grant answers the *current* request: same
        // line, the request's attempt tag is still live, and the pending
        // access was issued under that same attempt.
        let fresh = pending
            .map(|p| p.line == line && p.attempt == current && attempt == current)
            .unwrap_or(false);

        if !fresh {
            // Stale grant (transaction aborted while the request was in
            // flight). Install cleanly if the set has room; otherwise let
            // the directory learn via stale probes. A pending access for a
            // *different* line belongs to a newer request and must be left
            // alone; only a same-line stale pending is consumed.
            if self.l1s[core].lookup(line).is_none() {
                if with_data {
                    if let Victim::Free = self.l1s[core].victim_for(line) {
                        self.l1s[core].install(line, mesi, false, false);
                    }
                }
            } else if mesi == Mesi::Modified {
                self.l1s[core].lookup_mut(line).unwrap().state = Mesi::Modified;
            }
            if pending
                .map(|p| p.line == line && attempt == p.attempt)
                .unwrap_or(false)
            {
                self.meta[core].pending = None;
            }
            return;
        }
        let p = pending.unwrap();
        self.meta[core].pending = None;

        if self.l1s[core].lookup(line).is_some() {
            // Upgrade completion (or a re-grant while a stale install left
            // the line resident): adopt the granted state.
            let l = self.l1s[core].lookup_mut(line).unwrap();
            l.state = mesi;
        } else {
            // The way reserved at issue time may have been consumed by a
            // racing fill-after-invalidate; make room again if needed.
            match self.make_room(now, core, line) {
                Ok(()) => {}
                Err(_) => {
                    // Overflow at fill time in HTM mode: rare race; abort.
                    self.abort_from_protocol(now, core, AbortCause::Of);
                    return;
                }
            }
            self.l1s[core].install(line, mesi, false, false);
        }
        if p.set_r || p.set_w {
            // The transaction may have ended between issue and grant only
            // via abort, which bumps attempt; so bits are safe to set.
            self.l1s[core].mark_tx(line, p.set_r, p.set_w);
        }
        self.l1s[core].touch(line);
        self.notice(now, CoreNotice::AccessDone { core });
    }

    /// Fold the behaviourally relevant memory-system state into `h`
    /// (for the schedule explorer's state fingerprint; see
    /// `lockiller::sched`). Uses `Debug` renderings of the component
    /// state machines: two runs in the *same* state always hash equal
    /// except where hash-map iteration order diverges across insertion
    /// histories, and such a miss only costs the explorer pruning — it
    /// can never merge genuinely different states.
    pub fn fingerprint(&self, h: &mut impl std::hash::Hasher) {
        use std::hash::Hash;
        for (i, l1) in self.l1s.iter().enumerate() {
            format!("l1[{i}]={l1:?}").hash(h);
        }
        for (i, m) in self.meta.iter().enumerate() {
            format!("meta[{i}]={m:?}").hash(h);
        }
        for (i, b) in self.banks.iter().enumerate() {
            format!("bank[{i}]={b:?}").hash(h);
        }
        format!("mesh={:?}", self.mesh).hash(h);
        format!("sig=({:?},{:?})", self.sig_rd, self.sig_wr).hash(h);
        format!("waiters={:?}", self.sig_waiters).hash(h);
        format!("arbiter={:?}", self.arbiter).hash(h);
        format!("mutex={:?}", self.mutex_line).hash(h);
    }

    /// Debug invariant: single-writer/multiple-reader — no line may be
    /// E/M in one L1 while any other L1 holds a copy. O(cache size);
    /// called by the engine under a debug flag and by tests.
    pub fn check_swmr(&self) -> Result<(), String> {
        use sim_core::fxhash::FxHashMap;
        let mut holders: FxHashMap<LineAddr, Vec<(CoreId, Mesi)>> = FxHashMap::default();
        for (c, l1) in self.l1s.iter().enumerate() {
            l1.for_each_line(|line| {
                holders.entry(line.line).or_default().push((c, line.state));
            });
        }
        for (line, hs) in holders {
            let writers = hs.iter().filter(|(_, s)| *s != Mesi::Shared).count();
            if writers > 0 && hs.len() > 1 {
                return Err(format!("SWMR violated on {line:?}: {hs:?}"));
            }
        }
        Ok(())
    }

    fn l1_reject(&mut self, now: Cycle, core: CoreId, line: LineAddr, by_sig: bool, attempt: u64) {
        let current = self.meta[core].attempt;
        let pending = self.meta[core].pending;
        let fresh = pending
            .map(|p| p.line == line && p.attempt == current && attempt == current)
            .unwrap_or(false);
        if !fresh {
            if pending
                .map(|p| p.line == line && attempt == p.attempt)
                .unwrap_or(false)
            {
                self.meta[core].pending = None;
            }
            return;
        }
        self.meta[core].pending = None;
        self.notice(now, CoreNotice::AccessRejected { core, by_sig });
    }
}
