//! MESI directory coherence protocol with the LockillerTM HTM extensions.
//!
//! This crate models the memory subsystem of the paper's 32-core tiled CMP:
//!
//! - private L1 caches with per-line transactional read/write bits,
//! - a shared, banked, inclusive LLC whose banks hold full-map directory
//!   state and are the per-line serialization points (blocking directory),
//! - the **recovery mechanism**: conflict victims with higher priority
//!   answer probes with a NACK-style [`msg::L1Rsp::Reject`], the directory
//!   rolls its transient state back and relays the reject to the requester,
//!   and the rejecting core's wake-up table wakes parked requesters on
//!   commit/abort (§III-A of the paper),
//! - the **HTMLock overflow signatures**: two Bloom signatures at the LLC
//!   (`OfRdSig`/`OfWrSig`) record lock-transaction lines evicted from the
//!   L1; every HTM request is checked against them (§III-B),
//! - the **HLA arbiter**: the LLC-side serialization point that grants at
//!   most one TL/STL lock transaction at a time (§III-C).
//!
//! ## Value/timing decoupling
//!
//! Data values are *not* stored in the modelled caches. The simulation
//! engine keeps one authoritative flat memory plus per-core speculative
//! write buffers; the protocol here decides *permissions, conflicts, and
//! timing*. Because eager conflict detection guarantees isolation (a
//! conflicting access either aborts the victim or is rejected before data
//! is granted), committing a write buffer at `xend` time is equivalent to
//! the in-cache versioning the hardware performs. This is the standard
//! trick for architectural simulators whose fidelity target is protocol
//! behaviour rather than bit-level data movement.

pub mod arbiter;
pub mod bank;
pub mod bloom;
pub mod l1;
pub mod memsys;
pub mod msg;

pub use arbiter::HlaArbiter;
pub use bloom::Signature;
pub use memsys::{AccessKind, AccessResult, CoreNotice, MemSystem, OverflowKind};
pub use msg::{arbitrate, NetMsg, Prio, ReqInfo, ReqKind, ReqMode, TxMode, Winner, PRIO_LOCK};
