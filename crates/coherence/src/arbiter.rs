//! The HTMLock-authorization (HLA) arbiter of the switchingMode mechanism
//! (§III-C): a single serialization point — logically at the LLC — that
//! guarantees **at most one TL/STL lock transaction exists at a time**.
//!
//! - An STL request (a running HTM transaction proactively switching) is
//!   granted only if no lock transaction is active; otherwise it is denied
//!   and the transaction aborts as it would have without switchingMode.
//! - A TL request (a thread that already holds the software fallback lock
//!   executing `hlbegin`) is granted immediately when idle, and *queued*
//!   when any holder is active. A TL request can arrive while a *TL*
//!   holder is still registered because the previous holder's release
//!   message may still be in flight when it drops the software lock (the
//!   next lock owner's request can overtake it on the NoC) — the queued
//!   entrant is granted when the release lands. At most one TL request
//!   can ever be queued because TL entry requires the (unique) software
//!   lock.

use sim_core::types::CoreId;

/// Arbiter response to a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HlaDecision {
    Granted,
    Denied,
    /// TL request parked behind an active STL holder; the caller will be
    /// granted (via a message) when the holder releases.
    Queued,
}

#[derive(Clone, Debug, Default)]
pub struct HlaArbiter {
    holder: Option<(CoreId, bool)>, // (core, is_stl)
    queued_tl: Option<CoreId>,
    /// Extra concurrent holders that exist only under the `double_grant`
    /// fault injection (see [`HlaArbiter::inject_double_grant`]).
    rogue: Vec<CoreId>,
    double_grant: bool,
    pub grants: u64,
    pub denials: u64,
}

impl HlaArbiter {
    pub fn new() -> HlaArbiter {
        HlaArbiter::default()
    }

    /// Enable the seeded `double_grant` protocol bug: STL requests that
    /// should be denied while a lock transaction is active are granted
    /// instead, and the mismatched releases that follow are tolerated
    /// rather than treated as fatal. The checkers must catch the
    /// resulting concurrent lock-mode critical sections.
    pub fn inject_double_grant(&mut self) {
        self.double_grant = true;
    }

    pub fn holder(&self) -> Option<(CoreId, bool)> {
        self.holder
    }

    /// Process an authorization request.
    pub fn request(&mut self, core: CoreId, stl: bool) -> HlaDecision {
        match (self.holder, stl) {
            (None, _) => {
                self.holder = Some((core, stl));
                self.grants += 1;
                HlaDecision::Granted
            }
            (Some(_), true) => {
                if self.double_grant {
                    self.rogue.push(core);
                    self.grants += 1;
                    return HlaDecision::Granted;
                }
                self.denials += 1;
                HlaDecision::Denied
            }
            (Some(_), false) => {
                // The holder may still be registered only because its
                // HlaRel is in flight; park the entrant until it lands.
                assert!(
                    self.queued_tl.is_none(),
                    "second queued TL implies a lock bug"
                );
                self.queued_tl = Some(core);
                HlaDecision::Queued
            }
        }
    }

    /// Release by the current holder. Returns a queued TL core that must
    /// now be granted (the caller sends it the grant message).
    pub fn release(&mut self, core: CoreId) -> Option<CoreId> {
        if let Some(i) = self.rogue.iter().position(|&c| c == core) {
            self.rogue.remove(i);
            return None;
        }
        match self.holder {
            Some((h, _)) if h == core => {
                self.holder = None;
                if let Some(tl) = self.queued_tl.take() {
                    self.holder = Some((tl, false));
                    self.grants += 1;
                    return Some(tl);
                }
                None
            }
            _ if self.double_grant => None,
            other => panic!("release by non-holder {core} (holder: {other:?})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_when_idle() {
        let mut a = HlaArbiter::new();
        assert_eq!(a.request(3, true), HlaDecision::Granted);
        assert_eq!(a.holder(), Some((3, true)));
    }

    #[test]
    fn denies_stl_when_busy() {
        let mut a = HlaArbiter::new();
        a.request(0, false);
        assert_eq!(a.request(1, true), HlaDecision::Denied);
        assert_eq!(a.holder(), Some((0, false)));
        assert_eq!(a.denials, 1);
    }

    #[test]
    fn queues_tl_behind_stl() {
        let mut a = HlaArbiter::new();
        a.request(0, true);
        assert_eq!(a.request(1, false), HlaDecision::Queued);
        // STL finishes; TL promoted.
        assert_eq!(a.release(0), Some(1));
        assert_eq!(a.holder(), Some((1, false)));
        assert_eq!(a.release(1), None);
        assert_eq!(a.holder(), None);
    }

    #[test]
    fn release_reopens() {
        let mut a = HlaArbiter::new();
        a.request(2, true);
        a.release(2);
        assert_eq!(a.request(5, true), HlaDecision::Granted);
    }

    #[test]
    #[should_panic(expected = "non-holder")]
    fn release_by_stranger_panics() {
        let mut a = HlaArbiter::new();
        a.request(2, true);
        a.release(3);
    }

    #[test]
    fn tl_behind_in_flight_release_queues() {
        // Holder 0's release message is still in flight when the next
        // lock owner's TL request arrives: it queues and is granted at
        // the release.
        let mut a = HlaArbiter::new();
        a.request(0, false);
        assert_eq!(a.request(1, false), HlaDecision::Queued);
        assert_eq!(a.release(0), Some(1));
        assert_eq!(a.holder(), Some((1, false)));
    }

    #[test]
    #[should_panic(expected = "second queued TL")]
    fn two_queued_tl_requests_panic() {
        let mut a = HlaArbiter::new();
        a.request(0, true);
        a.request(1, false);
        a.request(2, false);
    }

    #[test]
    fn double_grant_fault_breaks_exclusivity() {
        let mut a = HlaArbiter::new();
        a.inject_double_grant();
        assert_eq!(a.request(0, false), HlaDecision::Granted);
        // An STL request while a TL holder is active must be denied; the
        // injected bug grants it anyway.
        assert_eq!(a.request(1, true), HlaDecision::Granted);
        assert_eq!(a.grants, 2);
        // Both releases are tolerated in either order.
        assert_eq!(a.release(1), None);
        assert_eq!(a.release(0), None);
        assert_eq!(a.holder(), None);
    }
}
