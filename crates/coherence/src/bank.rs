//! LLC bank storage: a set-associative tag array (capacity/inclusivity
//! model) and the full-map directory entries for lines homed at this bank.
//!
//! The directory is *blocking*: while a request for a line is in flight
//! (probes outstanding), later requests for the same line queue at the
//! entry. The tag array and the directory are deliberately decoupled —
//! evicting a tag back-invalidates L1 copies and drops the entry, but an
//! entry may briefly outlive its tag while probes drain.

use crate::msg::ReqInfo;
use sim_core::config::CacheGeometry;
use sim_core::fxhash::FxHashMap;
use sim_core::types::{CoreId, LineAddr};
use std::collections::VecDeque;

/// Sharer bitmap: up to 32 cores (the paper's system size).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreSet(pub u32);

impl CoreSet {
    pub fn empty() -> CoreSet {
        CoreSet(0)
    }

    pub fn single(c: CoreId) -> CoreSet {
        CoreSet(1 << c)
    }

    pub fn insert(&mut self, c: CoreId) {
        self.0 |= 1 << c;
    }

    pub fn remove(&mut self, c: CoreId) {
        self.0 &= !(1 << c);
    }

    pub fn contains(self, c: CoreId) -> bool {
        self.0 & (1 << c) != 0
    }

    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    pub fn iter(self) -> impl Iterator<Item = CoreId> {
        (0..32).filter(move |c| self.contains(*c))
    }
}

/// Stable directory state for a line (absence from the map means I).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirState {
    /// Read-only copies at these cores; LLC data current.
    Shared(CoreSet),
    /// One core holds the line E or M.
    Owned(CoreId),
}

/// An in-flight request at the directory: probes sent, responses pending.
#[derive(Clone, Debug)]
pub struct Pending {
    pub req: ReqInfo,
    /// Cores whose probe responses are still outstanding.
    pub waiting: CoreSet,
    /// Cores that answered with a recovery-mechanism reject.
    pub rejected: CoreSet,
    /// Cores that invalidated their copies in response to our probes.
    pub invalidated: CoreSet,
    /// Cores that answered a FwdGetS with a downgrade (kept an S copy
    /// and, in the direct topology, sent the data to the requester).
    pub downgraded: CoreSet,
    /// At least one probe response reported that it aborted a transaction.
    pub any_abort: bool,
    /// Pre-request stable state, for rollback on reject.
    pub prior: Option<DirState>,
}

/// Directory entry for one line homed at this bank.
#[derive(Clone, Debug)]
pub struct DirEntry {
    pub state: Option<DirState>,
    pub pending: Option<Pending>,
    /// A grant is in flight: the entry stays blocked until the requester's
    /// unblock message confirms receipt (the paper's Fig. 3 flow).
    pub unblock_wait: Option<CoreId>,
    /// Direct-response race: the requester's unblock arrived before the
    /// owner's acknowledgement finished the pending exchange; consumed
    /// when the entry would start waiting for that unblock.
    pub early_unblock: Option<CoreId>,
    /// Requests serialized behind the pending one.
    pub queue: VecDeque<ReqInfo>,
}

impl DirEntry {
    fn idle_and_invalid(&self) -> bool {
        self.state.is_none()
            && self.pending.is_none()
            && self.unblock_wait.is_none()
            && self.early_unblock.is_none()
            && self.queue.is_empty()
    }

    /// The entry cannot accept a new request right now.
    pub fn busy(&self) -> bool {
        self.pending.is_some() || self.unblock_wait.is_some()
    }
}

/// One LLC bank: tags for capacity, directory entries for protocol state.
#[derive(Clone, Debug)]
pub struct Bank {
    geom: CacheGeometry,
    /// Number of banks in the system: lines are interleaved line % banks,
    /// so within a bank the set index uses line / banks.
    stride: usize,
    sets: Vec<Vec<Option<TagLine>>>,
    clock: u64,
    pub dir: FxHashMap<LineAddr, DirEntry>,
    pub hits: u64,
    pub misses: u64,
    /// Requests that had to queue behind a busy directory entry.
    pub queued: u64,
    /// High-water mark of [`Bank::queue_depth`].
    pub queue_peak: u64,
}

#[derive(Clone, Copy, Debug)]
struct TagLine {
    line: LineAddr,
    lru: u64,
}

impl Bank {
    fn set_of(&self, line: LineAddr) -> usize {
        (line.0 as usize / self.stride) & (self.geom.sets - 1)
    }

    pub fn new(geom: CacheGeometry, stride: usize) -> Bank {
        assert!(stride >= 1);
        Bank {
            geom,
            stride,
            sets: vec![vec![None; geom.ways]; geom.sets],
            clock: 0,
            dir: FxHashMap::default(),
            hits: 0,
            misses: 0,
            queued: 0,
            queue_peak: 0,
        }
    }

    /// Queue a request behind the busy entry for its line, maintaining
    /// the bank's queue-depth counters.
    pub fn enqueue(&mut self, line: LineAddr, req: ReqInfo) {
        self.entry(line).queue.push_back(req);
        self.queued += 1;
        let depth = self.queue_depth() as u64;
        self.queue_peak = self.queue_peak.max(depth);
    }

    /// Requests currently queued behind busy directory entries.
    pub fn queue_depth(&self) -> usize {
        self.dir.values().map(|e| e.queue.len()).sum()
    }

    /// Directory entries with a request in flight (probes or unblock
    /// outstanding).
    pub fn busy_entries(&self) -> usize {
        self.dir.values().filter(|e| e.busy()).count()
    }

    /// Access the tag array for `line`: returns `(hit, evicted)` where
    /// `evicted` is a line that had to leave the LLC to make room
    /// (triggering back-invalidation by the caller). Lines for which
    /// `evictable` returns false (e.g., directory-pending lines) are
    /// never chosen.
    pub fn tag_access(
        &mut self,
        line: LineAddr,
        evictable: impl Fn(LineAddr) -> bool,
    ) -> (bool, Option<LineAddr>) {
        self.clock += 1;
        let clock = self.clock;
        let set_idx = self.set_of(line);
        let set = &mut self.sets[set_idx];
        if let Some(t) = set.iter_mut().flatten().find(|t| t.line == line) {
            t.lru = clock;
            self.hits += 1;
            return (true, None);
        }
        self.misses += 1;
        if let Some(free) = set.iter_mut().find(|w| w.is_none()) {
            *free = Some(TagLine { line, lru: clock });
            return (false, None);
        }
        // Evict LRU among evictable lines; if none qualifies, bypass
        // allocation (the line is served straight from memory this time).
        let victim_way = set
            .iter()
            .enumerate()
            .filter(|(_, w)| w.map(|t| evictable(t.line)).unwrap_or(false))
            .min_by_key(|(_, w)| w.unwrap().lru)
            .map(|(i, _)| i);
        match victim_way {
            Some(i) => {
                let evicted = set[i].unwrap().line;
                set[i] = Some(TagLine { line, lru: clock });
                (false, Some(evicted))
            }
            None => (false, None),
        }
    }

    /// True if the tag array currently holds `line`.
    pub fn tag_present(&self, line: LineAddr) -> bool {
        let set_idx = self.set_of(line);
        self.sets[set_idx].iter().flatten().any(|t| t.line == line)
    }

    /// Drop the tag for a line (when its directory entry is torn down by
    /// back-invalidation bookkeeping; idempotent).
    pub fn tag_drop(&mut self, line: LineAddr) {
        let set_idx = self.set_of(line);
        for w in self.sets[set_idx].iter_mut() {
            if w.is_some_and(|t| t.line == line) {
                *w = None;
            }
        }
    }

    pub fn entry(&mut self, line: LineAddr) -> &mut DirEntry {
        self.dir.entry(line).or_insert_with(|| DirEntry {
            state: None,
            pending: None,
            unblock_wait: None,
            early_unblock: None,
            queue: VecDeque::new(),
        })
    }

    /// Remove an entry if it has fully returned to idle/invalid, keeping
    /// the map from growing without bound over a long run.
    pub fn gc_entry(&mut self, line: LineAddr) {
        if self.dir.get(&line).is_some_and(DirEntry::idle_and_invalid) {
            self.dir.remove(&line);
        }
    }

    /// Is a request for this line currently in flight?
    pub fn is_busy(&self, line: LineAddr) -> bool {
        self.dir.get(&line).is_some_and(DirEntry::busy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{ReqKind, ReqMode};

    fn bank() -> Bank {
        Bank::new(CacheGeometry { sets: 2, ways: 2 }, 1)
    }

    #[test]
    fn coreset_ops() {
        let mut s = CoreSet::empty();
        assert!(s.is_empty());
        s.insert(3);
        s.insert(31);
        assert!(s.contains(3) && s.contains(31) && !s.contains(0));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 31]);
        s.remove(3);
        assert!(!s.contains(3));
    }

    #[test]
    fn tag_hit_after_allocate() {
        let mut b = bank();
        let (hit, ev) = b.tag_access(LineAddr(4), |_| true);
        assert!(!hit && ev.is_none());
        let (hit, _) = b.tag_access(LineAddr(4), |_| true);
        assert!(hit);
        assert_eq!(b.hits, 1);
        assert_eq!(b.misses, 1);
    }

    #[test]
    fn full_set_evicts_lru() {
        let mut b = bank();
        // Lines 0, 2, 4 all map to set 0 (2 sets).
        b.tag_access(LineAddr(0), |_| true);
        b.tag_access(LineAddr(2), |_| true);
        b.tag_access(LineAddr(0), |_| true); // 2 is now LRU
        let (hit, ev) = b.tag_access(LineAddr(4), |_| true);
        assert!(!hit);
        assert_eq!(ev, Some(LineAddr(2)));
    }

    #[test]
    fn unevictable_lines_are_skipped() {
        let mut b = bank();
        b.tag_access(LineAddr(0), |_| true);
        b.tag_access(LineAddr(2), |_| true);
        // Only line 0 is evictable.
        let (_, ev) = b.tag_access(LineAddr(4), |l| l == LineAddr(0));
        assert_eq!(ev, Some(LineAddr(0)));
        // Nothing evictable: bypass (no eviction, not resident).
        let (_, ev) = b.tag_access(LineAddr(6), |_| false);
        assert_eq!(ev, None);
        assert!(!b.tag_present(LineAddr(6)));
    }

    #[test]
    fn entry_lifecycle_and_gc() {
        let mut b = bank();
        let line = LineAddr(9);
        b.entry(line).state = Some(DirState::Owned(1));
        assert!(b.dir.contains_key(&line));
        b.gc_entry(line); // not idle: kept
        assert!(b.dir.contains_key(&line));
        b.entry(line).state = None;
        b.gc_entry(line);
        assert!(!b.dir.contains_key(&line));
    }

    #[test]
    fn busy_detection() {
        let mut b = bank();
        let line = LineAddr(5);
        assert!(!b.is_busy(line));
        b.entry(line).pending = Some(Pending {
            req: ReqInfo {
                core: 0,
                kind: ReqKind::GetS,
                line,
                prio: 0,
                mode: ReqMode::NonTx,
                attempt: 0,
            },
            waiting: CoreSet::single(1),
            rejected: CoreSet::empty(),
            invalidated: CoreSet::empty(),
            downgraded: CoreSet::empty(),
            any_abort: false,
            prior: None,
        });
        assert!(b.is_busy(line));
        b.entry(line).pending = None;
        b.entry(line).unblock_wait = Some(2);
        assert!(b.is_busy(line), "unblock wait must also block");
    }

    #[test]
    fn enqueue_tracks_depth_and_peak() {
        let mut b = bank();
        let req = |core| ReqInfo {
            core,
            kind: ReqKind::GetS,
            line: LineAddr(5),
            prio: 0,
            mode: ReqMode::NonTx,
            attempt: 0,
        };
        assert_eq!(b.queue_depth(), 0);
        b.enqueue(LineAddr(5), req(1));
        b.enqueue(LineAddr(5), req(2));
        assert_eq!(b.queue_depth(), 2);
        assert_eq!(b.queued, 2);
        assert_eq!(b.queue_peak, 2);
        b.entry(LineAddr(5)).queue.pop_front();
        assert_eq!(b.queue_depth(), 1);
        assert_eq!(b.queue_peak, 2, "peak is a high-water mark");
        assert_eq!(b.busy_entries(), 0);
        b.entry(LineAddr(5)).unblock_wait = Some(2);
        assert_eq!(b.busy_entries(), 1);
    }

    #[test]
    fn tag_drop_is_idempotent() {
        let mut b = bank();
        b.tag_access(LineAddr(4), |_| true);
        assert!(b.tag_present(LineAddr(4)));
        b.tag_drop(LineAddr(4));
        assert!(!b.tag_present(LineAddr(4)));
        b.tag_drop(LineAddr(4));
    }
}
