//! Protocol message vocabulary and the conflict-arbitration rule at the
//! heart of the recovery mechanism.

use sim_core::config::PolicyConfig;
use sim_core::types::{CoreId, LineAddr};

/// Transaction priority carried on requests (the paper encodes this in the
/// ACE bus ARUSER field). Higher wins; ties break towards the smaller core
/// id. Lock transactions carry [`PRIO_LOCK`], the global maximum.
pub type Prio = u64;

/// Priority of a TL/STL lock transaction: globally highest.
pub const PRIO_LOCK: Prio = u64::MAX;

/// Execution mode of a core as seen by the protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxMode {
    /// Not in any transaction.
    None,
    /// Speculative HTM transaction.
    Htm,
    /// HTMLock lock transaction entered via `hlbegin` (TL).
    LockTl,
    /// HTMLock lock transaction entered by a proactive switch (STL).
    LockStl,
}

impl TxMode {
    pub fn is_lock(self) -> bool {
        matches!(self, TxMode::LockTl | TxMode::LockStl)
    }

    pub fn is_tx(self) -> bool {
        !matches!(self, TxMode::None)
    }
}

/// Classification a request carries so victims and the LLC can arbitrate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReqMode {
    /// Plain access outside any critical section.
    NonTx,
    /// Non-transactional access from inside a baseline fallback critical
    /// section (used to classify the paper's `mutex` abort cause).
    Fallback,
    /// Access from a speculative HTM transaction.
    Htm,
    /// Access from a TL/STL lock transaction.
    LockTx,
}

/// Coherence request kind. An upgrade is a `GetM` from a current sharer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReqKind {
    GetS,
    GetM,
}

/// A coherence request as seen by the home bank and probed L1s.
#[derive(Clone, Copy, Debug)]
pub struct ReqInfo {
    pub core: CoreId,
    pub kind: ReqKind,
    pub line: LineAddr,
    pub prio: Prio,
    pub mode: ReqMode,
    /// Requester-side attempt tag: responses echo it so a core can tell a
    /// response to a dead (aborted-attempt) request from one addressed to
    /// its current request for the same line.
    pub attempt: u64,
}

/// Grant state returned with data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GrantState {
    Shared,
    Exclusive,
    Modified,
}

/// Response from a probed L1 back to the home bank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum L1Rsp {
    /// Invalidated (or never had) the line; `had_line` distinguishes a
    /// stale probe from a real invalidation, `aborted` reports that the
    /// probe killed a transaction.
    InvAck { had_line: bool, aborted: bool },
    /// Owner downgraded M/E to S and (timing-wise) pushed data back.
    DowngradeAck { dirty: bool },
    /// Recovery mechanism: the victim refuses the request (NACK). The
    /// directory restores its pre-request state and relays the reject.
    Reject,
}

/// Messages travelling on the NoC between L1s, LLC banks, and the arbiter.
#[derive(Clone, Copy, Debug)]
pub enum NetMsg {
    /// L1 -> home bank: coherence request.
    Req(ReqInfo),
    /// L1 -> home bank: dirty writeback (eviction) — data message.
    PutM { core: CoreId, line: LineAddr },
    /// L1 -> home bank: clean eviction notice (E/S) — control message.
    PutClean { core: CoreId, line: LineAddr },
    /// L1 -> home bank: pre-transaction writeback of a dirty line that is
    /// about to be speculatively written. Timing-only; no state change.
    SpecWb { core: CoreId, line: LineAddr },
    /// L1 -> home bank: add an evicted lock-transaction line to the LLC
    /// overflow signatures.
    SigAdd {
        line: LineAddr,
        read: bool,
        write: bool,
    },

    /// Home bank -> L1: probe. `back_inval` marks inclusive-LLC eviction
    /// probes, which cannot be rejected.
    FwdGetS { to: CoreId, req: ReqInfo },
    Inv {
        to: CoreId,
        req: ReqInfo,
        back_inval: bool,
    },

    /// L1 -> home bank: probe response for `req`.
    ProbeRsp {
        from: CoreId,
        req: ReqInfo,
        rsp: L1Rsp,
    },

    /// Home bank -> requesting L1: grant with data (data message) or a
    /// dataless upgrade ack (control message).
    Grant {
        to: CoreId,
        line: LineAddr,
        state: GrantState,
        with_data: bool,
        attempt: u64,
    },
    /// Home bank -> requesting L1: request rejected (by a victim's NACK or
    /// by the LLC overflow signatures).
    RspReject {
        to: CoreId,
        line: LineAddr,
        by_sig: bool,
        attempt: u64,
    },

    /// Owner -> requester (direct-response topologies only): the data
    /// response travels L1-to-L1 while the owner acknowledges the home
    /// bank in parallel. Functions as a `Grant` at the requester.
    DirectData {
        to: CoreId,
        line: LineAddr,
        state: GrantState,
        attempt: u64,
    },

    /// Requester -> home bank: grant received; the directory may move to
    /// the stable state and serve the next queued request (Fig. 3).
    Unblock { core: CoreId, line: LineAddr },

    /// Rejecter -> parked requester: retry now (the paper's stash-style
    /// wake-up message).
    Wakeup { to: CoreId },

    /// Core -> HLA arbiter (tile 0): request to enter HTMLock mode.
    /// `stl` distinguishes a proactive switch from a TL entry.
    HlaReq { core: CoreId, stl: bool },
    /// Core -> HLA arbiter: release (at `hlend`).
    HlaRel { core: CoreId },
    /// Arbiter -> core: authorization result.
    HlaRsp { to: CoreId, granted: bool },
}

impl NetMsg {
    /// Destination tile of the message given the line->bank mapping width.
    pub fn is_data(&self) -> bool {
        matches!(
            self,
            NetMsg::PutM { .. }
                | NetMsg::SpecWb { .. }
                | NetMsg::Grant {
                    with_data: true,
                    ..
                }
                | NetMsg::DirectData { .. }
                | NetMsg::ProbeRsp {
                    rsp: L1Rsp::DowngradeAck { dirty: true },
                    ..
                }
        )
    }
}

/// Outcome of conflict arbitration between a request and a victim that
/// holds the line in its read/write set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Winner {
    /// The requester wins: the victim transaction aborts.
    Requester,
    /// The victim wins: the request is rejected (recovery mechanism).
    Victim,
}

/// The paper's arbitration rule (Fig. 4): on a conflicting external
/// request, compare the requester's carried priority against the victim's
/// current priority; equal priorities break towards the smaller core id.
///
/// Overriding rules:
/// - a TL/STL lock-transaction victim always wins (it cannot roll back);
/// - non-transactional requesters always win against HTM victims (they
///   have no abort/retry machinery in the baseline ISA);
/// - without the recovery mechanism the requester always wins
///   (requester-win best-effort HTM).
pub fn arbitrate(
    policy: &PolicyConfig,
    req: &ReqInfo,
    victim_mode: TxMode,
    victim_prio: Prio,
    victim_core: CoreId,
) -> Winner {
    debug_assert!(
        victim_mode.is_tx(),
        "arbitration requires a transactional victim"
    );
    if victim_mode.is_lock() {
        return Winner::Victim;
    }
    if matches!(req.mode, ReqMode::NonTx | ReqMode::Fallback) {
        return Winner::Requester;
    }
    if !policy.recovery {
        return Winner::Requester;
    }
    match req.prio.cmp(&victim_prio) {
        std::cmp::Ordering::Greater => Winner::Requester,
        std::cmp::Ordering::Less => Winner::Victim,
        std::cmp::Ordering::Equal => {
            if req.core < victim_core {
                Winner::Requester
            } else {
                Winner::Victim
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(core: CoreId, prio: Prio, mode: ReqMode) -> ReqInfo {
        ReqInfo {
            core,
            kind: ReqKind::GetM,
            line: LineAddr(1),
            prio,
            mode,
            attempt: 0,
        }
    }

    fn recovery_policy() -> PolicyConfig {
        PolicyConfig {
            recovery: true,
            ..PolicyConfig::default()
        }
    }

    #[test]
    fn baseline_requester_always_wins() {
        let p = PolicyConfig::default();
        assert_eq!(
            arbitrate(&p, &req(1, 0, ReqMode::Htm), TxMode::Htm, 1_000_000, 0),
            Winner::Requester
        );
    }

    #[test]
    fn lock_victim_always_wins() {
        let p = PolicyConfig::default();
        assert_eq!(
            arbitrate(
                &p,
                &req(1, PRIO_LOCK, ReqMode::Htm),
                TxMode::LockTl,
                PRIO_LOCK,
                0
            ),
            Winner::Victim
        );
        let p = recovery_policy();
        assert_eq!(
            arbitrate(
                &p,
                &req(1, 99, ReqMode::NonTx),
                TxMode::LockStl,
                PRIO_LOCK,
                0
            ),
            Winner::Victim
        );
    }

    #[test]
    fn non_tx_requester_beats_htm_victim() {
        let p = recovery_policy();
        assert_eq!(
            arbitrate(&p, &req(1, 0, ReqMode::NonTx), TxMode::Htm, 1_000_000, 0),
            Winner::Requester
        );
        assert_eq!(
            arbitrate(&p, &req(1, 0, ReqMode::Fallback), TxMode::Htm, 1_000_000, 0),
            Winner::Requester
        );
    }

    #[test]
    fn recovery_compares_priorities() {
        let p = recovery_policy();
        assert_eq!(
            arbitrate(&p, &req(1, 10, ReqMode::Htm), TxMode::Htm, 5, 0),
            Winner::Requester
        );
        assert_eq!(
            arbitrate(&p, &req(1, 5, ReqMode::Htm), TxMode::Htm, 10, 0),
            Winner::Victim
        );
    }

    #[test]
    fn ties_break_to_smaller_core_id() {
        let p = recovery_policy();
        assert_eq!(
            arbitrate(&p, &req(0, 7, ReqMode::Htm), TxMode::Htm, 7, 1),
            Winner::Requester
        );
        assert_eq!(
            arbitrate(&p, &req(1, 7, ReqMode::Htm), TxMode::Htm, 7, 0),
            Winner::Victim
        );
    }

    #[test]
    fn lock_requester_beats_htm_victim_under_recovery() {
        let p = recovery_policy();
        assert_eq!(
            arbitrate(
                &p,
                &req(1, PRIO_LOCK, ReqMode::LockTx),
                TxMode::Htm,
                1_000_000,
                0
            ),
            Winner::Requester
        );
    }

    #[test]
    fn arbitration_is_antisymmetric() {
        // For any pair of HTM transactions, exactly one side wins both ways
        // around — the property that rules out mutual-reject deadlock.
        let p = recovery_policy();
        for (pa, pb) in [(3u64, 9u64), (9, 3), (5, 5)] {
            for (ca, cb) in [(0usize, 1usize), (1, 0)] {
                if ca == cb {
                    continue;
                }
                let a_vs_b = arbitrate(&p, &req(ca, pa, ReqMode::Htm), TxMode::Htm, pb, cb);
                let b_vs_a = arbitrate(&p, &req(cb, pb, ReqMode::Htm), TxMode::Htm, pa, ca);
                assert_ne!(
                    a_vs_b, b_vs_a,
                    "both sides won/lost: pa={pa} pb={pb} ca={ca} cb={cb}"
                );
            }
        }
    }

    #[test]
    fn data_message_classification() {
        assert!(NetMsg::PutM {
            core: 0,
            line: LineAddr(1)
        }
        .is_data());
        assert!(!NetMsg::PutClean {
            core: 0,
            line: LineAddr(1)
        }
        .is_data());
        assert!(NetMsg::Grant {
            to: 0,
            line: LineAddr(1),
            state: GrantState::Shared,
            with_data: true,
            attempt: 0
        }
        .is_data());
        assert!(!NetMsg::Wakeup { to: 3 }.is_data());
    }
}
