//! Private L1 data cache with transactional read/write bits.
//!
//! The L1 is mechanically dumb: set-associative tag storage with LRU and
//! per-line MESI state plus the R/W transaction bits. All protocol *logic*
//! (probe arbitration, eviction policy decisions, signature spills) lives
//! in [`crate::memsys`], which drives these primitives; that separation
//! keeps each side independently testable.
//!
//! Victim preference on a fill follows real best-effort HTM designs:
//! an invalid way, else the LRU non-transactional line, and only when
//! every way in the set is transactionally marked does the fill become a
//! capacity **overflow event** — the trigger for an `of` abort, an
//! HTMLock signature spill, or a proactive switch, depending on mode.

use sim_core::config::CacheGeometry;
use sim_core::fxhash::FxHashSet;
use sim_core::types::LineAddr;

/// MESI stable states as held in an L1 (I is represented by absence).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mesi {
    Shared,
    Exclusive,
    Modified,
}

/// One resident L1 line.
#[derive(Clone, Copy, Debug)]
pub struct L1Line {
    pub line: LineAddr,
    pub state: Mesi,
    /// Transactional read bit.
    pub r: bool,
    /// Transactional write bit (implies `state == Modified`).
    pub w: bool,
    lru: u64,
}

/// Outcome of asking where a fill for `line` would go.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Victim {
    /// A free way exists; install directly.
    Free,
    /// Evict this (non-transactional) resident line first.
    Evict(L1LineSnapshot),
    /// Every way in the set carries transaction bits: capacity overflow.
    /// Carries the LRU transactional line, which is what an HTMLock-mode
    /// spill would push into the LLC signatures.
    Overflow(L1LineSnapshot),
}

/// A copyable snapshot of a line used in eviction decisions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct L1LineSnapshot {
    pub line: LineAddr,
    pub state: Mesi,
    pub r: bool,
    pub w: bool,
}

impl From<&L1Line> for L1LineSnapshot {
    fn from(l: &L1Line) -> Self {
        L1LineSnapshot {
            line: l.line,
            state: l.state,
            r: l.r,
            w: l.w,
        }
    }
}

/// The L1 cache proper.
#[derive(Clone, Debug)]
pub struct L1 {
    geom: CacheGeometry,
    sets: Vec<Vec<Option<L1Line>>>,
    clock: u64,
    /// Lines with R or W set — kept aside so commit/abort are O(set size),
    /// not O(cache size).
    tx_lines: FxHashSet<LineAddr>,
}

impl L1 {
    pub fn new(geom: CacheGeometry) -> L1 {
        L1 {
            geom,
            sets: vec![vec![None; geom.ways]; geom.sets],
            clock: 0,
            tx_lines: FxHashSet::default(),
        }
    }

    fn set_of(&self, line: LineAddr) -> usize {
        self.geom.set_of(line.0)
    }

    pub fn lookup(&self, line: LineAddr) -> Option<&L1Line> {
        self.sets[self.set_of(line)]
            .iter()
            .flatten()
            .find(|l| l.line == line)
    }

    pub fn lookup_mut(&mut self, line: LineAddr) -> Option<&mut L1Line> {
        let set = self.set_of(line);
        self.sets[set].iter_mut().flatten().find(|l| l.line == line)
    }

    /// Bump LRU recency for a resident line.
    pub fn touch(&mut self, line: LineAddr) {
        self.clock += 1;
        let clock = self.clock;
        if let Some(l) = self.lookup_mut(line) {
            l.lru = clock;
        }
    }

    /// Set the transactional read/write bits on a resident line.
    /// Setting `w` requires the line to be Modified (speculative data
    /// lives in M; enforced by the protocol before any tx store).
    pub fn mark_tx(&mut self, line: LineAddr, read: bool, write: bool) {
        let l = self.lookup_mut(line).expect("mark_tx on absent line");
        if write {
            debug_assert_eq!(l.state, Mesi::Modified, "W bit requires M state");
            l.w = true;
        }
        if read {
            l.r = true;
        }
        if l.r || l.w {
            self.tx_lines.insert(line);
        }
    }

    /// Where would a fill for `line` go? Does not modify the cache.
    pub fn victim_for(&self, line: LineAddr) -> Victim {
        let set = &self.sets[self.set_of(line)];
        debug_assert!(
            set.iter().flatten().all(|l| l.line != line),
            "victim_for on already-resident line"
        );
        if set.iter().any(std::option::Option::is_none) {
            return Victim::Free;
        }
        // LRU among non-transactional lines.
        if let Some(v) = set
            .iter()
            .flatten()
            .filter(|l| !l.r && !l.w)
            .min_by_key(|l| l.lru)
        {
            return Victim::Evict(v.into());
        }
        // All ways transactional: overflow; report the LRU tx line.
        let v = set
            .iter()
            .flatten()
            .min_by_key(|l| l.lru)
            .expect("set cannot be empty here");
        Victim::Overflow(v.into())
    }

    /// Install a line; a way must be free (caller evicted if necessary).
    pub fn install(&mut self, line: LineAddr, state: Mesi, r: bool, w: bool) {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_of(line);
        debug_assert!(self.lookup(line).is_none(), "install over resident line");
        let slot = self.sets[set]
            .iter_mut()
            .find(|w| w.is_none())
            .expect("install with no free way");
        *slot = Some(L1Line {
            line,
            state,
            r,
            w,
            lru: clock,
        });
        if r || w {
            self.tx_lines.insert(line);
        }
    }

    /// Remove a line, returning its final state if it was resident.
    pub fn remove(&mut self, line: LineAddr) -> Option<L1LineSnapshot> {
        let set = self.set_of(line);
        for way in self.sets[set].iter_mut() {
            if way.as_ref().is_some_and(|l| l.line == line) {
                let snap = way.as_ref().map(L1LineSnapshot::from);
                *way = None;
                self.tx_lines.remove(&line);
                return snap;
            }
        }
        None
    }

    /// Lines currently carrying transaction bits.
    pub fn tx_lines(&self) -> impl Iterator<Item = &L1Line> {
        self.tx_lines.iter().filter_map(|l| self.lookup(*l))
    }

    pub fn tx_footprint(&self) -> usize {
        self.tx_lines.len()
    }

    /// Commit: speculative M lines stay Modified, all bits clear.
    pub fn commit_tx(&mut self) {
        let lines: Vec<LineAddr> = self.tx_lines.drain().collect();
        for line in lines {
            if let Some(l) = self.lookup_mut(line) {
                debug_assert!(!l.w || l.state == Mesi::Modified);
                l.r = false;
                l.w = false;
            }
        }
    }

    /// Abort: speculatively written (W) lines are invalidated — their data
    /// never left the write buffer; the LLC copy is the pre-transaction
    /// truth. Read-set lines stay resident with bits cleared. Returns the
    /// invalidated lines (the directory learns lazily via stale probes,
    /// as in real abort-invalidate designs).
    pub fn abort_tx(&mut self) -> Vec<LineAddr> {
        let lines: Vec<LineAddr> = self.tx_lines.drain().collect();
        let mut dropped = Vec::new();
        for line in lines {
            let set = self.set_of(line);
            for way in self.sets[set].iter_mut() {
                if let Some(l) = way {
                    if l.line == line {
                        if l.w {
                            *way = None;
                            dropped.push(line);
                        } else {
                            l.r = false;
                        }
                        break;
                    }
                }
            }
        }
        dropped
    }

    /// Visit every resident line (diagnostics / invariant checks).
    pub fn for_each_line(&self, mut f: impl FnMut(&L1Line)) {
        for set in &self.sets {
            for way in set.iter().flatten() {
                f(way);
            }
        }
    }

    /// Number of resident lines (diagnostics / tests).
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(|s| s.iter().flatten().count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> L1 {
        // 4 sets x 2 ways.
        L1::new(CacheGeometry { sets: 4, ways: 2 })
    }

    #[test]
    fn install_and_lookup() {
        let mut c = small();
        c.install(LineAddr(1), Mesi::Exclusive, false, false);
        assert_eq!(c.lookup(LineAddr(1)).unwrap().state, Mesi::Exclusive);
        assert!(c.lookup(LineAddr(2)).is_none());
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn victim_prefers_free_way() {
        let mut c = small();
        c.install(LineAddr(0), Mesi::Shared, false, false);
        assert_eq!(c.victim_for(LineAddr(4)), Victim::Free); // same set 0, one way free
    }

    #[test]
    fn victim_prefers_lru_non_tx() {
        let mut c = small();
        c.install(LineAddr(0), Mesi::Shared, false, false);
        c.install(LineAddr(4), Mesi::Shared, false, false);
        c.touch(LineAddr(0)); // 4 becomes LRU
        match c.victim_for(LineAddr(8)) {
            Victim::Evict(v) => assert_eq!(v.line, LineAddr(4)),
            other => panic!("expected eviction, got {other:?}"),
        }
    }

    #[test]
    fn victim_skips_tx_lines() {
        let mut c = small();
        c.install(LineAddr(0), Mesi::Modified, false, false);
        c.mark_tx(LineAddr(0), false, true);
        c.install(LineAddr(4), Mesi::Shared, false, false);
        c.touch(LineAddr(0));
        // Line 4 is MRU-lesser but line 0 is transactional: evict 4.
        match c.victim_for(LineAddr(8)) {
            Victim::Evict(v) => assert_eq!(v.line, LineAddr(4)),
            other => panic!("expected eviction of non-tx line, got {other:?}"),
        }
    }

    #[test]
    fn all_tx_ways_is_overflow() {
        let mut c = small();
        c.install(LineAddr(0), Mesi::Exclusive, true, false);
        c.mark_tx(LineAddr(0), true, false);
        c.install(LineAddr(4), Mesi::Modified, false, false);
        c.mark_tx(LineAddr(4), false, true);
        match c.victim_for(LineAddr(8)) {
            Victim::Overflow(v) => assert_eq!(v.line, LineAddr(0), "LRU tx line reported"),
            other => panic!("expected overflow, got {other:?}"),
        }
    }

    #[test]
    fn commit_clears_bits_keeps_lines() {
        let mut c = small();
        c.install(LineAddr(0), Mesi::Modified, false, false);
        c.mark_tx(LineAddr(0), false, true);
        c.install(LineAddr(1), Mesi::Shared, false, false);
        c.mark_tx(LineAddr(1), true, false);
        c.commit_tx();
        assert_eq!(c.occupancy(), 2);
        let l0 = c.lookup(LineAddr(0)).unwrap();
        assert!(!l0.w && l0.state == Mesi::Modified);
        assert!(!c.lookup(LineAddr(1)).unwrap().r);
        assert_eq!(c.tx_footprint(), 0);
    }

    #[test]
    fn abort_drops_spec_writes_keeps_reads() {
        let mut c = small();
        c.install(LineAddr(0), Mesi::Modified, false, false);
        c.mark_tx(LineAddr(0), false, true);
        c.install(LineAddr(1), Mesi::Shared, false, false);
        c.mark_tx(LineAddr(1), true, false);
        let dropped = c.abort_tx();
        assert_eq!(dropped, vec![LineAddr(0)]);
        assert!(c.lookup(LineAddr(0)).is_none());
        let l1 = c.lookup(LineAddr(1)).unwrap();
        assert!(!l1.r);
        assert_eq!(c.tx_footprint(), 0);
    }

    #[test]
    fn remove_returns_snapshot() {
        let mut c = small();
        c.install(LineAddr(5), Mesi::Modified, false, false);
        let s = c.remove(LineAddr(5)).unwrap();
        assert_eq!(s.state, Mesi::Modified);
        assert!(c.remove(LineAddr(5)).is_none());
    }

    #[test]
    fn tx_lines_iterates_marked() {
        let mut c = small();
        c.install(LineAddr(0), Mesi::Shared, false, false);
        c.install(LineAddr(1), Mesi::Shared, false, false);
        c.mark_tx(LineAddr(1), true, false);
        let marked: Vec<LineAddr> = c.tx_lines().map(|l| l.line).collect();
        assert_eq!(marked, vec![LineAddr(1)]);
    }

    #[test]
    #[should_panic(expected = "W bit requires M state")]
    fn w_bit_requires_modified() {
        let mut c = small();
        c.install(LineAddr(0), Mesi::Shared, false, false);
        c.mark_tx(LineAddr(0), false, true);
    }
}
