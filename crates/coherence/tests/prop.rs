//! Property-based tests of the coherence substrate: random request
//! streams must preserve SWMR and directory/L1 agreement, arbitration
//! must be a total order, and signatures must never produce false
//! negatives.

use coherence::memsys::{AccessKind, AccessResult, MemSystem};
use coherence::msg::{arbitrate, ReqInfo, ReqKind, ReqMode, TxMode, Winner};
use coherence::Signature;
use proptest::prelude::*;
use sim_core::config::{PolicyConfig, PriorityKind, RejectAction, SystemConfig};
use sim_core::event::EventQueue;
use sim_core::types::LineAddr;

/// Drive random non-transactional accesses from several cores and check
/// the SWMR invariant after every quiescent point.
fn random_access_run(ops: &[(u8, u8, u8)], recovery: bool) {
    let mut cfg = SystemConfig::testing(4);
    if recovery {
        cfg.policy = PolicyConfig {
            recovery: true,
            priority: PriorityKind::InstsBased,
            reject_action: RejectAction::WaitWakeup,
            ..PolicyConfig::default()
        };
    }
    let mut ms = MemSystem::new(cfg);
    let mut q = EventQueue::new();
    let mut blocked = [false; 4];
    for &(core, line, write) in ops {
        let core = (core % 4) as usize;
        if blocked[core] {
            continue; // single outstanding request per core
        }
        let line = LineAddr(16 + (line % 8) as u64);
        let kind = if write % 2 == 0 {
            AccessKind::Load
        } else {
            AccessKind::Store
        };
        let t = q.now();
        match ms.access(t, core, line, kind) {
            AccessResult::Done { .. } => {}
            AccessResult::Pending => blocked[core] = true,
            AccessResult::Overflow { .. } => unreachable!("non-tx access cannot overflow"),
        }
        // Pump to quiescence.
        let (msgs, notices) = ms.take_outputs();
        for (at, m) in msgs {
            q.schedule_at(at, m);
        }
        for (_, n) in notices {
            if let coherence::memsys::CoreNotice::AccessDone { core } = n {
                blocked[core] = false;
            }
        }
        while let Some((at, m)) = q.pop() {
            ms.handle_msg(at, m);
            let (msgs, notices) = ms.take_outputs();
            for (at2, m2) in msgs {
                q.schedule_at(at2, m2);
            }
            for (_, n) in notices {
                if let coherence::memsys::CoreNotice::AccessDone { core } = n {
                    blocked[core] = false;
                }
            }
        }
        ms.check_swmr().expect("SWMR violated");
    }
}

/// Mixed transactional stream interpreter: each op byte-tuple drives one
/// of begin/commit/abort/load/store per core, pumping to quiescence and
/// checking SWMR plus transaction-bit hygiene after every step.
fn random_tx_run(ops: &[(u8, u8, u8, u8)]) {
    let mut cfg = SystemConfig::testing(4);
    cfg.policy = PolicyConfig {
        recovery: true,
        priority: PriorityKind::InstsBased,
        reject_action: RejectAction::WaitWakeup,
        ..PolicyConfig::default()
    };
    let mut ms = MemSystem::new(cfg);
    let mut q = EventQueue::new();
    // Engine-side mirror: per-core (in_tx, blocked, parked, prio counter).
    let mut in_tx = [false; 4];
    let mut blocked = [false; 4];
    let mut prio = [0u64; 4];

    let pump = |ms: &mut MemSystem,
                q: &mut EventQueue<coherence::msg::NetMsg>,
                in_tx: &mut [bool; 4],
                blocked: &mut [bool; 4]| {
        loop {
            let (msgs, notices) = ms.take_outputs();
            for (at, m) in msgs {
                q.schedule_at(at, m);
            }
            for (_, n) in notices {
                match n {
                    coherence::memsys::CoreNotice::AccessDone { core } => blocked[core] = false,
                    coherence::memsys::CoreNotice::AccessRejected { core, .. } => {
                        // Park-free model: drop the request entirely.
                        blocked[core] = false;
                        ms.cancel_pending(core);
                    }
                    coherence::memsys::CoreNotice::TxAborted { core, .. } => {
                        in_tx[core] = false;
                        blocked[core] = false;
                    }
                    coherence::memsys::CoreNotice::Wakeup { .. }
                    | coherence::memsys::CoreNotice::HlaResult { .. } => {}
                }
            }
            match q.pop() {
                Some((at, m)) => ms.handle_msg(at, m),
                None => break,
            }
        }
    };

    for &(sel, core, line, val) in ops {
        let core = (core % 4) as usize;
        if blocked[core] {
            continue;
        }
        let t = q.now();
        match sel % 5 {
            0 => {
                if !in_tx[core] && ms.core_mode(core) == TxMode::None {
                    ms.begin_htm(core, 0);
                    in_tx[core] = true;
                    prio[core] = 0;
                }
            }
            1 => {
                if in_tx[core] && ms.core_mode(core) == TxMode::Htm {
                    ms.commit_htm(t, core);
                    in_tx[core] = false;
                }
            }
            2 => {
                if in_tx[core] && ms.core_mode(core) == TxMode::Htm {
                    ms.abort_locally(t, core);
                    in_tx[core] = false;
                }
            }
            _ => {
                let l = LineAddr(32 + (line % 10) as u64);
                let kind = if val % 2 == 0 {
                    AccessKind::Load
                } else {
                    AccessKind::Store
                };
                prio[core] += 1;
                ms.set_prio(core, prio[core]);
                match ms.access(t, core, l, kind) {
                    AccessResult::Done { .. } => {}
                    AccessResult::Pending => blocked[core] = true,
                    AccessResult::Overflow { .. } => {
                        // Capacity abort, as the engine would do.
                        ms.abort_locally(t, core);
                        in_tx[core] = false;
                    }
                }
            }
        }
        pump(&mut ms, &mut q, &mut in_tx, &mut blocked);
        ms.check_swmr().expect("SWMR violated");
        for (c, &tx) in in_tx.iter().enumerate() {
            if !tx && ms.core_mode(c) == TxMode::None {
                assert_eq!(ms.tx_footprint(c), 0, "core {c}: tx bits leaked outside tx");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn swmr_holds_under_random_nontx_traffic(ops in prop::collection::vec(any::<(u8, u8, u8)>(), 1..120)) {
        random_access_run(&ops, false);
    }

    #[test]
    fn swmr_and_bit_hygiene_under_random_tx_streams(ops in prop::collection::vec(any::<(u8, u8, u8, u8)>(), 1..150)) {
        random_tx_run(&ops);
    }

    #[test]
    fn swmr_holds_with_recovery_policy(ops in prop::collection::vec(any::<(u8, u8, u8)>(), 1..120)) {
        random_access_run(&ops, true);
    }

    #[test]
    fn arbitration_total_order(pa in any::<u64>(), pb in any::<u64>(), ca in 0usize..32, cb in 0usize..32) {
        prop_assume!(ca != cb);
        let policy = PolicyConfig { recovery: true, ..PolicyConfig::default() };
        let mk = |core, prio| ReqInfo {
            core,
            kind: ReqKind::GetM,
            line: LineAddr(1),
            prio,
            mode: ReqMode::Htm,
            attempt: 0,
        };
        let ab = arbitrate(&policy, &mk(ca, pa), TxMode::Htm, pb, cb);
        let ba = arbitrate(&policy, &mk(cb, pb), TxMode::Htm, pa, ca);
        // Exactly one direction wins: no mutual-win (lost update) and no
        // mutual-reject (deadlock).
        prop_assert_ne!(ab, ba);
        // And the winner is consistent with the (prio, -core) total order.
        let a_beats_b = (pa, std::cmp::Reverse(ca)) > (pb, std::cmp::Reverse(cb));
        prop_assert_eq!(ab == Winner::Requester, a_beats_b);
    }

    #[test]
    fn signature_no_false_negatives(lines in prop::collection::vec(any::<u64>(), 1..256)) {
        let mut sig = Signature::new(512, 3);
        for &l in &lines {
            sig.add(LineAddr(l));
        }
        for &l in &lines {
            prop_assert!(sig.test(LineAddr(l)));
        }
    }

    #[test]
    fn signature_clear_resets_everything(lines in prop::collection::vec(any::<u64>(), 1..64)) {
        let mut sig = Signature::new(512, 2);
        for &l in &lines {
            sig.add(LineAddr(l));
        }
        sig.clear();
        prop_assert!(sig.is_empty());
        // After clear, only re-added lines test positive.
        sig.add(LineAddr(12345));
        prop_assert!(sig.test(LineAddr(12345)));
    }
}
