//! End-to-end protocol tests: a miniature event pump stands in for the
//! engine and drives `MemSystem` through full request/probe/response
//! exchanges, checking MESI behaviour, HTM conflict arbitration, the
//! recovery (reject/wake-up) path, overflow signatures, and HLA flows.

use coherence::memsys::{AccessKind, AccessResult, CoreNotice, MemSystem, OverflowKind};
use coherence::msg::TxMode;
use sim_core::config::{PolicyConfig, PriorityKind, RejectAction, SystemConfig};
use sim_core::event::EventQueue;
use sim_core::stats::AbortCause;
use sim_core::types::{Cycle, LineAddr};

/// Pumps scheduled messages until quiescent, collecting notices.
struct Pump {
    ms: MemSystem,
    q: EventQueue<coherence::msg::NetMsg>,
    notices: Vec<(Cycle, CoreNotice)>,
}

impl Pump {
    fn new(cfg: SystemConfig) -> Pump {
        Pump {
            ms: MemSystem::new(cfg),
            q: EventQueue::new(),
            notices: Vec::new(),
        }
    }

    fn drain(&mut self) {
        let (msgs, notices) = self.ms.take_outputs();
        for (at, m) in msgs {
            self.q.schedule_at(at, m);
        }
        self.notices.extend(notices);
    }

    /// Run until no messages remain. Returns collected notices.
    ///
    /// Every quiescent point must satisfy single-writer/multiple-reader,
    /// so each settle runs the same checker the engine uses in checked
    /// mode — every protocol test here asserts SWMR for free.
    fn settle(&mut self) -> Vec<CoreNotice> {
        self.drain();
        while let Some((at, msg)) = self.q.pop() {
            self.ms.handle_msg(at, msg);
            self.drain();
        }
        self.ms.check_swmr().expect("SWMR violated at quiescence");
        self.notices.drain(..).map(|(_, n)| n).collect()
    }

    fn now(&self) -> Cycle {
        self.q.now()
    }

    fn access(&mut self, core: usize, line: u64, kind: AccessKind) -> Vec<CoreNotice> {
        let t = self.now();
        match self.ms.access(t, core, LineAddr(line), kind) {
            AccessResult::Done { .. } => {
                self.drain();
                vec![CoreNotice::AccessDone { core }]
            }
            AccessResult::Pending => self.settle(),
            AccessResult::Overflow { .. } => panic!("unexpected overflow"),
        }
    }
}

fn cfg(policy: PolicyConfig) -> SystemConfig {
    let mut c = SystemConfig::testing(4);
    c.policy = policy;
    c
}

fn base() -> SystemConfig {
    cfg(PolicyConfig::default())
}

fn recovery() -> SystemConfig {
    cfg(PolicyConfig {
        recovery: true,
        priority: PriorityKind::InstsBased,
        reject_action: RejectAction::WaitWakeup,
        ..PolicyConfig::default()
    })
}

#[test]
fn cold_load_grants_exclusive() {
    let mut p = Pump::new(base());
    let n = p.access(0, 100, AccessKind::Load);
    assert_eq!(n, vec![CoreNotice::AccessDone { core: 0 }]);
    // Second load hits.
    let t = p.now();
    match p.ms.access(t, 0, LineAddr(100), AccessKind::Load) {
        AccessResult::Done { at } => assert_eq!(at, t + 2),
        other => panic!("expected L1 hit, got {other:?}"),
    }
}

#[test]
fn store_after_exclusive_load_is_hit() {
    let mut p = Pump::new(base());
    p.access(0, 100, AccessKind::Load);
    let t = p.now();
    // E -> M silently.
    match p.ms.access(t, 0, LineAddr(100), AccessKind::Store) {
        AccessResult::Done { .. } => {}
        other => panic!("expected silent upgrade, got {other:?}"),
    }
}

#[test]
fn two_readers_share() {
    let mut p = Pump::new(base());
    p.access(0, 100, AccessKind::Load);
    let n = p.access(1, 100, AccessKind::Load);
    assert_eq!(n, vec![CoreNotice::AccessDone { core: 1 }]);
    // Now a third reader: straight shared grant, no probes needed.
    let n = p.access(2, 100, AccessKind::Load);
    assert_eq!(n, vec![CoreNotice::AccessDone { core: 2 }]);
}

#[test]
fn writer_invalidates_readers() {
    let mut p = Pump::new(base());
    p.access(0, 100, AccessKind::Load);
    p.access(1, 100, AccessKind::Load);
    let n = p.access(2, 100, AccessKind::Store);
    assert_eq!(n, vec![CoreNotice::AccessDone { core: 2 }]);
    // Core 0's copy is gone: its next load misses (goes pending).
    let t = p.now();
    assert_eq!(
        p.ms.access(t, 0, LineAddr(100), AccessKind::Load),
        AccessResult::Pending
    );
    let n = p.settle();
    assert_eq!(n, vec![CoreNotice::AccessDone { core: 0 }]);
}

#[test]
fn upgrade_from_shared() {
    let mut p = Pump::new(base());
    p.access(0, 100, AccessKind::Load);
    p.access(1, 100, AccessKind::Load); // both S now
    let n = p.access(0, 100, AccessKind::Store); // upgrade
    assert_eq!(n, vec![CoreNotice::AccessDone { core: 0 }]);
    // Core 1 lost its copy.
    let t = p.now();
    assert_eq!(
        p.ms.access(t, 1, LineAddr(100), AccessKind::Load),
        AccessResult::Pending
    );
    p.settle();
}

#[test]
fn requester_win_aborts_victim_tx() {
    let mut p = Pump::new(base());
    // Core 0 in tx writes line 100.
    p.ms.begin_htm(0, 0);
    p.access(0, 100, AccessKind::Store);
    assert_eq!(p.ms.tx_footprint(0), 1);
    // Core 1 (non-tx) loads it: baseline requester-win aborts core 0.
    let n = p.access(1, 100, AccessKind::Load);
    assert!(n.contains(&CoreNotice::TxAborted {
        core: 0,
        cause: AbortCause::NonTran
    }));
    assert!(n.contains(&CoreNotice::AccessDone { core: 1 }));
    assert_eq!(p.ms.core_mode(0), TxMode::None);
    assert_eq!(p.ms.tx_footprint(0), 0);
}

#[test]
fn htm_vs_htm_conflict_classified_mc() {
    let mut p = Pump::new(base());
    p.ms.begin_htm(0, 0);
    p.access(0, 100, AccessKind::Store);
    p.ms.begin_htm(1, 0);
    let n = p.access(1, 100, AccessKind::Load);
    assert!(n.contains(&CoreNotice::TxAborted {
        core: 0,
        cause: AbortCause::Mc
    }));
}

#[test]
fn read_read_is_not_a_conflict() {
    let mut p = Pump::new(base());
    p.ms.begin_htm(0, 0);
    p.access(0, 100, AccessKind::Load);
    p.ms.begin_htm(1, 0);
    let n = p.access(1, 100, AccessKind::Load);
    assert_eq!(n, vec![CoreNotice::AccessDone { core: 1 }]);
    assert_eq!(
        p.ms.core_mode(0),
        TxMode::Htm,
        "reader must not abort reader"
    );
}

#[test]
fn recovery_rejects_lower_priority_requester() {
    let mut p = Pump::new(recovery());
    p.ms.begin_htm(0, 0);
    p.ms.set_prio(0, 100); // victim has high priority
    p.access(0, 100, AccessKind::Store);
    p.ms.begin_htm(1, 0);
    p.ms.set_prio(1, 5); // requester lower
    let t = p.now();
    assert_eq!(
        p.ms.access(t, 1, LineAddr(100), AccessKind::Load),
        AccessResult::Pending
    );
    let n = p.settle();
    assert_eq!(
        n,
        vec![CoreNotice::AccessRejected {
            core: 1,
            by_sig: false
        }]
    );
    // Victim survives with its write set intact.
    assert_eq!(p.ms.core_mode(0), TxMode::Htm);
    assert_eq!(p.ms.tx_footprint(0), 1);
    assert_eq!(p.ms.stats.rejects, 1);
}

#[test]
fn recovery_lets_higher_priority_requester_win() {
    let mut p = Pump::new(recovery());
    p.ms.begin_htm(0, 0);
    p.ms.set_prio(0, 5);
    p.access(0, 100, AccessKind::Store);
    p.ms.begin_htm(1, 0);
    p.ms.set_prio(1, 100);
    let n = p.access(1, 100, AccessKind::Load);
    assert!(n.contains(&CoreNotice::TxAborted {
        core: 0,
        cause: AbortCause::Mc
    }));
    assert!(n.contains(&CoreNotice::AccessDone { core: 1 }));
}

#[test]
fn commit_wakes_rejected_cores() {
    let mut p = Pump::new(recovery());
    p.ms.begin_htm(0, 0);
    p.ms.set_prio(0, 100);
    p.access(0, 100, AccessKind::Store);
    p.ms.begin_htm(1, 0);
    p.ms.set_prio(1, 5);
    let t = p.now();
    p.ms.access(t, 1, LineAddr(100), AccessKind::Load);
    p.settle();
    // Core 0 commits: wake-up flows to core 1.
    let t = p.now();
    p.ms.commit_htm(t, 0);
    let n = p.settle();
    assert_eq!(n, vec![CoreNotice::Wakeup { core: 1 }]);
    assert!(p.ms.stats.wakeups_sent >= 1);
    // Retry now succeeds.
    let n = p.access(1, 100, AccessKind::Load);
    assert_eq!(n, vec![CoreNotice::AccessDone { core: 1 }]);
}

#[test]
fn directory_state_restored_after_reject() {
    let mut p = Pump::new(recovery());
    p.ms.begin_htm(0, 0);
    p.ms.set_prio(0, 100);
    p.access(0, 100, AccessKind::Store);
    p.ms.begin_htm(1, 0);
    p.ms.set_prio(1, 5);
    let t = p.now();
    p.ms.access(t, 1, LineAddr(100), AccessKind::Load);
    p.settle();
    p.ms.cancel_pending(1);
    // Victim's line still valid: a store hit for core 0 (W already set).
    let t = p.now();
    match p.ms.access(t, 0, LineAddr(100), AccessKind::Store) {
        AccessResult::Done { .. } => {}
        other => panic!("victim lost its line after reject: {other:?}"),
    }
}

#[test]
fn lock_transaction_rejects_htm_requests() {
    let mut p = Pump::new(recovery());
    // Core 0 enters TL mode and writes a line.
    p.ms.enter_lock(0, false);
    p.access(0, 100, AccessKind::Store);
    // An HTM transaction tries to read it: rejected.
    p.ms.begin_htm(1, 0);
    p.ms.set_prio(1, u64::MAX - 1);
    let t = p.now();
    assert_eq!(
        p.ms.access(t, 1, LineAddr(100), AccessKind::Load),
        AccessResult::Pending
    );
    let n = p.settle();
    assert_eq!(
        n,
        vec![CoreNotice::AccessRejected {
            core: 1,
            by_sig: false
        }]
    );
    assert_eq!(p.ms.core_mode(0), TxMode::LockTl);
}

#[test]
fn lock_transaction_aborts_htm_victims() {
    let mut p = Pump::new(recovery());
    p.ms.begin_htm(0, 0);
    p.ms.set_prio(0, 1_000_000);
    p.access(0, 100, AccessKind::Store);
    p.ms.enter_lock(1, false);
    let n = p.access(1, 100, AccessKind::Store);
    assert!(n.contains(&CoreNotice::TxAborted {
        core: 0,
        cause: AbortCause::Lock
    }));
}

#[test]
fn exit_lock_wakes_rejected() {
    let mut p = Pump::new(recovery());
    p.ms.enter_lock(0, false);
    p.access(0, 100, AccessKind::Store);
    p.ms.begin_htm(1, 0);
    let t = p.now();
    p.ms.access(t, 1, LineAddr(100), AccessKind::Load);
    p.settle();
    let t = p.now();
    p.ms.exit_lock(t, 0);
    let n = p.settle();
    assert_eq!(n, vec![CoreNotice::Wakeup { core: 1 }]);
    // After hlend the HTM transaction can proceed.
    let n = p.access(1, 100, AccessKind::Load);
    assert_eq!(n, vec![CoreNotice::AccessDone { core: 1 }]);
}

#[test]
fn mutex_line_classification() {
    let mut p = Pump::new(base());
    p.ms.set_mutex_line(LineAddr(7));
    p.ms.begin_htm(0, 0);
    p.access(0, 7, AccessKind::Load); // subscribe to the fallback lock
                                      // Non-tx CAS on the lock line by core 1 (acquiring the lock).
    let n = p.access(1, 7, AccessKind::Store);
    assert!(n.contains(&CoreNotice::TxAborted {
        core: 0,
        cause: AbortCause::Mutex
    }));
}

#[test]
fn capacity_overflow_reported_in_htm_mode() {
    let mut c = SystemConfig::testing(2);
    // Tiny L1: 1 set x 2 ways.
    c.mem.l1 = sim_core::config::CacheGeometry { sets: 1, ways: 2 };
    let mut p = Pump::new(c);
    p.ms.begin_htm(0, 0);
    p.access(0, 100, AccessKind::Load);
    p.access(0, 101, AccessKind::Load);
    let t = p.now();
    match p.ms.access(t, 0, LineAddr(102), AccessKind::Load) {
        AccessResult::Overflow { kind } => assert_eq!(kind, OverflowKind::HtmCapacity),
        other => panic!("expected overflow, got {other:?}"),
    }
}

#[test]
fn lock_mode_spills_to_signature_and_rejects() {
    let mut c = SystemConfig::testing(2);
    c.mem.l1 = sim_core::config::CacheGeometry { sets: 1, ways: 2 };
    c.policy.recovery = true;
    c.policy.htmlock = true;
    let mut p = Pump::new(c);
    p.ms.enter_lock(0, false);
    p.access(0, 100, AccessKind::Store);
    p.access(0, 102, AccessKind::Store);
    // Third tx line: spills the LRU (100) into OfWrSig, survives.
    let n = p.access(0, 104, AccessKind::Store);
    assert_eq!(n, vec![CoreNotice::AccessDone { core: 0 }]);
    assert_eq!(p.ms.core_mode(0), TxMode::LockTl);
    assert!(p.ms.stats.spills >= 1);
    // An HTM transaction touching the spilled line is signature-rejected.
    p.ms.begin_htm(1, 0);
    let t = p.now();
    assert_eq!(
        p.ms.access(t, 1, LineAddr(100), AccessKind::Load),
        AccessResult::Pending
    );
    let n = p.settle();
    assert_eq!(
        n,
        vec![CoreNotice::AccessRejected {
            core: 1,
            by_sig: true
        }]
    );
    assert_eq!(p.ms.stats.sig_rejects, 1);
    // hlend clears signatures and wakes the waiter.
    let t = p.now();
    p.ms.exit_lock(t, 0);
    let n = p.settle();
    assert!(n.contains(&CoreNotice::Wakeup { core: 1 }));
    let n = p.access(1, 100, AccessKind::Load);
    assert_eq!(n, vec![CoreNotice::AccessDone { core: 1 }]);
}

#[test]
fn hla_grant_and_release_flow() {
    let mut p = Pump::new(recovery());
    let t = p.now();
    p.ms.hla_request(t, 1, true);
    let n = p.settle();
    assert_eq!(
        n,
        vec![CoreNotice::HlaResult {
            core: 1,
            granted: true
        }]
    );
    p.ms.enter_lock(1, true);
    p.ms.finish_hla(p.q.now(), 1, true);
    // A second STL applicant is denied.
    let t = p.now();
    p.ms.hla_request(t, 2, true);
    let n = p.settle();
    assert_eq!(
        n,
        vec![CoreNotice::HlaResult {
            core: 2,
            granted: false
        }]
    );
    p.ms.finish_hla(p.q.now(), 2, false);
    // Release; a new applicant succeeds.
    let t = p.now();
    p.ms.exit_lock(t, 1);
    p.settle();
    let t = p.now();
    p.ms.hla_request(t, 3, true);
    let n = p.settle();
    assert_eq!(
        n,
        vec![CoreNotice::HlaResult {
            core: 3,
            granted: true
        }]
    );
}

#[test]
fn tl_queued_behind_stl_granted_on_release() {
    let mut p = Pump::new(recovery());
    let t = p.now();
    p.ms.hla_request(t, 1, true); // STL
    p.settle();
    p.ms.enter_lock(1, true);
    p.ms.finish_hla(p.q.now(), 1, true);
    // TL applicant queues.
    let t = p.now();
    p.ms.hla_request(t, 2, false);
    let n = p.settle();
    assert!(n.is_empty(), "TL should be queued, not answered: {n:?}");
    // STL holder finishes: TL grant flows.
    let t = p.now();
    p.ms.exit_lock(t, 1);
    let n = p.settle();
    assert!(n.contains(&CoreNotice::HlaResult {
        core: 2,
        granted: true
    }));
}

#[test]
fn applying_hla_blocks_probes_until_finish() {
    let mut p = Pump::new(recovery());
    p.ms.begin_htm(0, 0);
    p.ms.set_prio(0, 50);
    p.access(0, 100, AccessKind::Store);
    // Core 0 starts an STL application: probes are deferred.
    let t = p.now();
    p.ms.hla_request(t, 0, true);
    // Core 1 requests the line while core 0 is applying.
    p.ms.begin_htm(1, 0);
    p.ms.set_prio(1, 99);
    let t = p.now();
    p.ms.access(t, 1, LineAddr(100), AccessKind::Store);
    let n = p.settle();
    // HLA grant arrives; probe was deferred, so no abort of core 0 yet
    // until finish_hla replays it.
    assert!(n.contains(&CoreNotice::HlaResult {
        core: 0,
        granted: true
    }));
    assert!(!n
        .iter()
        .any(|x| matches!(x, CoreNotice::TxAborted { core: 0, .. })));
    // Switch succeeds: now in STL mode, max priority; replayed probe is
    // rejected rather than aborting.
    p.ms.enter_lock(0, true);
    p.ms.finish_hla(p.q.now(), 0, true);
    let n = p.settle();
    assert_eq!(
        n,
        vec![CoreNotice::AccessRejected {
            core: 1,
            by_sig: false
        }]
    );
    assert_eq!(p.ms.core_mode(0), TxMode::LockStl);
}

#[test]
fn commit_keeps_written_lines_resident() {
    let mut p = Pump::new(base());
    p.ms.begin_htm(0, 0);
    p.access(0, 100, AccessKind::Store);
    let t = p.now();
    p.ms.commit_htm(t, 0);
    // Line survives as M: next store hits.
    let t = p.now();
    match p.ms.access(t, 0, LineAddr(100), AccessKind::Store) {
        AccessResult::Done { .. } => {}
        other => panic!("committed line lost: {other:?}"),
    }
}

#[test]
fn abort_invalidates_spec_lines_but_keeps_read_lines() {
    let mut p = Pump::new(base());
    p.ms.begin_htm(0, 0);
    p.access(0, 100, AccessKind::Store);
    p.access(0, 200, AccessKind::Load);
    let t = p.now();
    p.ms.abort_locally(t, 0);
    // Spec write gone: miss. Read line kept: hit.
    let t = p.now();
    assert_eq!(
        p.ms.access(t, 0, LineAddr(100), AccessKind::Load),
        AccessResult::Pending
    );
    p.settle();
    let t = p.now();
    match p.ms.access(t, 0, LineAddr(200), AccessKind::Load) {
        AccessResult::Done { .. } => {}
        other => panic!("read-set line dropped on abort: {other:?}"),
    }
}

#[test]
fn llc_back_invalidation_aborts_tx() {
    let mut c = SystemConfig::testing(2);
    // Tiny LLC bank: 1 set x 1 way per bank, 2 banks.
    c.mem.llc_bank = sim_core::config::CacheGeometry { sets: 1, ways: 1 };
    let mut p = Pump::new(c);
    p.ms.begin_htm(0, 0);
    p.access(0, 100, AccessKind::Store); // home bank 0
                                         // Another line homed at bank 0 evicts line 100's LLC tag.
    let n = p.access(1, 102, AccessKind::Load);
    assert!(
        n.contains(&CoreNotice::TxAborted {
            core: 0,
            cause: AbortCause::Of
        }),
        "expected back-invalidation abort, got {n:?}"
    );
}

#[test]
fn deterministic_replay() {
    let run = || {
        let mut p = Pump::new(recovery());
        p.ms.begin_htm(0, 0);
        p.ms.set_prio(0, 100);
        p.access(0, 100, AccessKind::Store);
        p.ms.begin_htm(1, 0);
        p.ms.set_prio(1, 10);
        let t = p.now();
        p.ms.access(t, 1, LineAddr(100), AccessKind::Load);
        p.settle();
        let t = p.now();
        p.ms.commit_htm(t, 0);
        p.settle();
        (p.now(), p.ms.stats.rejects, p.ms.stats.wakeups_sent)
    };
    assert_eq!(run(), run());
}

// ---------------------------------------------------------------------
// Direct L1-to-L1 response topology (§III-A's "L1 nodes can communicate
// directly" variant).
// ---------------------------------------------------------------------

fn direct(policy: PolicyConfig) -> SystemConfig {
    let mut c = cfg(policy);
    c.mem.direct_rsp = true;
    c
}

#[test]
fn direct_downgrade_serves_requester_from_owner() {
    let mut p = Pump::new(direct(PolicyConfig::default()));
    p.access(0, 100, AccessKind::Store); // owner M
    let n = p.access(1, 100, AccessKind::Load);
    assert!(n.contains(&CoreNotice::AccessDone { core: 1 }));
    // Both sharers now: a third reader is served by the home directly.
    let n = p.access(2, 100, AccessKind::Load);
    assert_eq!(n, vec![CoreNotice::AccessDone { core: 2 }]);
}

#[test]
fn direct_reject_reaches_requester() {
    let mut p = Pump::new(direct(PolicyConfig {
        recovery: true,
        priority: PriorityKind::InstsBased,
        reject_action: RejectAction::WaitWakeup,
        ..PolicyConfig::default()
    }));
    p.ms.begin_htm(0, 0);
    p.ms.set_prio(0, 100);
    p.access(0, 100, AccessKind::Store);
    p.ms.begin_htm(1, 0);
    p.ms.set_prio(1, 5);
    let t = p.now();
    assert_eq!(
        p.ms.access(t, 1, LineAddr(100), AccessKind::Load),
        AccessResult::Pending
    );
    let n = p.settle();
    assert_eq!(
        n,
        vec![CoreNotice::AccessRejected {
            core: 1,
            by_sig: false
        }]
    );
    // Victim intact; commit wakes and retry succeeds (full loop).
    let t = p.now();
    p.ms.commit_htm(t, 0);
    let n = p.settle();
    assert_eq!(n, vec![CoreNotice::Wakeup { core: 1 }]);
    let n = p.access(1, 100, AccessKind::Load);
    assert_eq!(n, vec![CoreNotice::AccessDone { core: 1 }]);
}

#[test]
fn direct_mode_is_deterministic_and_faster_on_sharing() {
    // Owner-to-reader transfers save one LLC hop: the read-after-write
    // handoff must not be slower than the via-home flow.
    let run = |direct_rsp: bool| {
        let mut c = cfg(PolicyConfig::default());
        c.mem.direct_rsp = direct_rsp;
        let mut p = Pump::new(c);
        p.access(0, 100, AccessKind::Store);
        p.access(1, 100, AccessKind::Load);
        p.now()
    };
    let via_home = run(false);
    let direct = run(true);
    assert!(
        direct <= via_home,
        "direct responses must not add latency ({direct} vs {via_home})"
    );
}

#[test]
fn direct_mode_queue_drains_after_early_unblock() {
    // Three readers pile onto an owned line; the direct data transfer can
    // let the requester unblock before the owner's ack lands at the home.
    // Every queued request must still be served.
    let mut p = Pump::new(direct(PolicyConfig::default()));
    p.access(0, 100, AccessKind::Store);
    let t = p.now();
    p.ms.access(t, 1, LineAddr(100), AccessKind::Load);
    p.ms.access(t, 2, LineAddr(100), AccessKind::Load);
    p.ms.access(t, 3, LineAddr(100), AccessKind::Load);
    let n = p.settle();
    for c in 1..=3 {
        assert!(
            n.contains(&CoreNotice::AccessDone { core: c }),
            "reader {c} starved: {n:?}"
        );
    }
}

// ---------------------------------------------------------------------
// Targeted races: evictions crossing probes, stale owners, and writeback
// bookkeeping.
// ---------------------------------------------------------------------

#[test]
fn eviction_crossing_probe_resolves() {
    // Core 0 owns a line, evicts it (PutM in flight), while core 1's
    // request probes core 0: the stale probe ack plus the late PutM must
    // leave the directory consistent and the requester served.
    let mut c = SystemConfig::testing(2);
    c.mem.l1 = sim_core::config::CacheGeometry { sets: 1, ways: 2 };
    let mut p = Pump::new(c);
    p.access(0, 100, AccessKind::Store); // set 0 (line 100 % 1)
                                         // Fill the set so the next access evicts line 100.
    p.access(0, 101, AccessKind::Store);
    let t = p.now();
    // This miss evicts LRU (line 100): PutM goes into flight...
    let r = p.ms.access(t, 0, LineAddr(102), AccessKind::Store);
    assert_eq!(r, AccessResult::Pending);
    // ...and core 1 immediately requests the evicted line.
    let r1 = p.ms.access(t, 1, LineAddr(100), AccessKind::Load);
    assert_eq!(r1, AccessResult::Pending);
    let n = p.settle();
    assert!(n.contains(&CoreNotice::AccessDone { core: 0 }));
    assert!(n.contains(&CoreNotice::AccessDone { core: 1 }));
    p.ms.check_swmr().unwrap();
}

#[test]
fn aborted_owner_rerequests_own_line() {
    // After an abort silently drops a speculative line, the directory
    // still lists the core as owner; its own re-request must be granted.
    let mut p = Pump::new(base());
    p.ms.begin_htm(0, 0);
    p.access(0, 100, AccessKind::Store);
    let t = p.now();
    p.ms.abort_locally(t, 0);
    p.settle();
    let n = p.access(0, 100, AccessKind::Load);
    assert_eq!(n, vec![CoreNotice::AccessDone { core: 0 }]);
    p.ms.check_swmr().unwrap();
}

#[test]
fn spec_writeback_emitted_once_per_dirty_line() {
    // A dirty (M) line speculatively written for the first time must push
    // its pre-transaction value home exactly once.
    let mut p = Pump::new(base());
    p.access(0, 100, AccessKind::Store); // M, dirty, non-spec
    p.ms.begin_htm(0, 0);
    p.access(0, 100, AccessKind::Store); // first spec write: SpecWb
    assert_eq!(p.ms.stats.spec_writebacks, 1);
    p.access(0, 100, AccessKind::Store); // already W: no second writeback
    assert_eq!(p.ms.stats.spec_writebacks, 1);
    let t = p.now();
    p.ms.commit_htm(t, 0);
    p.settle();
    // A fresh transaction on the (still dirty) line writes back again.
    p.ms.begin_htm(0, 0);
    p.access(0, 100, AccessKind::Store);
    assert_eq!(p.ms.stats.spec_writebacks, 2);
}

#[test]
fn clean_line_needs_no_spec_writeback() {
    let mut p = Pump::new(base());
    p.access(0, 100, AccessKind::Load); // E, clean
    p.ms.begin_htm(0, 0);
    p.access(0, 100, AccessKind::Store); // silent E->M, no writeback
    assert_eq!(p.ms.stats.spec_writebacks, 0);
}

#[test]
fn wakeup_list_deduplicates_requesters() {
    // The same rejected requester retrying twice must not double-book the
    // victim's wake-up table (one wake-up on commit, not two).
    let mut p = Pump::new(recovery());
    p.ms.begin_htm(0, 0);
    p.ms.set_prio(0, 100);
    p.access(0, 100, AccessKind::Store);
    p.ms.begin_htm(1, 0);
    p.ms.set_prio(1, 1);
    for _ in 0..2 {
        let t = p.now();
        p.ms.access(t, 1, LineAddr(100), AccessKind::Load);
        let n = p.settle();
        assert_eq!(
            n,
            vec![CoreNotice::AccessRejected {
                core: 1,
                by_sig: false
            }]
        );
    }
    let t = p.now();
    p.ms.commit_htm(t, 0);
    let n = p.settle();
    assert_eq!(
        n.iter()
            .filter(|x| matches!(x, CoreNotice::Wakeup { core: 1 }))
            .count(),
        1,
        "exactly one wake-up expected: {n:?}"
    );
}

#[test]
fn llc_misses_cost_memory_latency() {
    let mut p = Pump::new(base());
    // Cold miss goes to memory.
    let t0 = p.now();
    p.access(0, 100, AccessKind::Load);
    let cold = p.now() - t0;
    // A different core's miss on the same (now LLC-resident) line is
    // cheaper by about the memory latency.
    let t1 = p.now();
    p.access(1, 100, AccessKind::Load);
    let warm = p.now() - t1;
    let mem_lat = SystemConfig::testing(4).mem.mem_latency;
    assert!(
        cold >= warm + mem_lat / 2,
        "cold {cold} should exceed warm {warm} by ~memory latency"
    );
}
