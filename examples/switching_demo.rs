//! The switchingMode mechanism in action: a transaction whose footprint
//! exceeds the L1 would abort with a capacity overflow on every retry in
//! plain best-effort HTM — LockillerTM instead switches it to STL mode
//! mid-flight, keeping all completed work (§III-C, Figs. 6/10/11).
//!
//! ```text
//! cargo run --release --example switching_demo
//! ```

use lockillertm::lockiller::flatmem::{FlatMem, SetupCtx};
use lockillertm::lockiller::guest::GuestCtx;
use lockillertm::lockiller::{Program, Runner, SystemKind};
use lockillertm::sim_core::config::{CacheGeometry, SystemConfig};
use lockillertm::sim_core::stats::{AbortCause, Phase};
use lockillertm::sim_core::types::Addr;

/// Each thread repeatedly sums and increments a region larger than L1.
struct BigScan {
    lines: u64,
    rounds: u64,
    base: Addr,
}

impl Program for BigScan {
    fn name(&self) -> &str {
        "big-scan"
    }

    fn setup(&mut self, s: &mut SetupCtx, _threads: usize) {
        self.base = s.alloc(self.lines * 8);
    }

    fn run(&self, ctx: &mut GuestCtx) {
        for _ in 0..self.rounds {
            let base = self.base;
            let lines = self.lines;
            ctx.critical(|tx| {
                for i in 0..lines {
                    let a = base.add(i * 8);
                    let v = tx.load(a)?;
                    tx.store(a, v + 1)?;
                }
                Ok(())
            });
            ctx.compute(100);
        }
    }

    fn validate(&self, _mem: &FlatMem) -> Result<(), String> {
        Ok(())
    }
}

fn main() {
    // A deliberately small L1 (64 lines) that a 100-line transaction
    // cannot fit — the Fig. 13 "small cache" regime in miniature.
    let mut cfg = SystemConfig::testing(2);
    cfg.mem.l1 = CacheGeometry { sets: 16, ways: 4 };

    println!("transaction footprint: 100 lines; L1 capacity: 64 lines\n");
    for kind in [
        SystemKind::Baseline,
        SystemKind::LockillerRwil,
        SystemKind::LockillerTm,
    ] {
        let mut prog = BigScan {
            lines: 100,
            rounds: 4,
            base: Addr::NULL,
        };
        let stats = Runner::new(kind)
            .threads(2)
            .config(cfg.clone())
            .run(&mut prog)
            .stats;
        println!("{}:", kind.name());
        println!("  cycles                 {}", stats.cycles);
        println!(
            "  capacity (of) aborts   {}",
            stats.abort_count(AbortCause::Of)
        );
        println!(
            "  fallback-lock sections {} (serialized)",
            stats.lock_commits
        );
        println!(
            "  proactive switches     {} granted, {} denied",
            stats.switches_granted, stats.switches_denied
        );
        println!(
            "  STL commits            {} (work saved: {} cycles in switchLock)",
            stats.stl_commits,
            stats.phase(Phase::SwitchLock)
        );
        println!();
    }
    println!(
        "Baseline burns every overflowing attempt; RWIL saves parallelism by\n\
         running the fallback as a lock transaction; full LockillerTM avoids\n\
         the rollback entirely by switching the running transaction to STL."
    );
}
