//! Visualize what each mechanism does to the execution: an ASCII
//! timeline of transactional events per core, for the same contended
//! workload on three systems.
//!
//! ```text
//! cargo run --release --example timeline
//! ```

use lockillertm::lockiller::{render_timeline, Runner, SystemKind};
use lockillertm::sim_core::config::SystemConfig;
use lockillertm::stamp::{Scale, Workload, WorkloadKind};

fn main() {
    let threads = 4;
    for kind in [
        SystemKind::Baseline,
        SystemKind::LockillerRwi,
        SystemKind::LockillerTm,
    ] {
        let mut prog = Workload::with_scale(WorkloadKind::KmeansHigh, threads, Scale::Tiny);
        let mut out = Runner::new(kind)
            .threads(threads)
            .config(SystemConfig::testing(threads))
            .tracing()
            .run(&mut prog);
        let trace = out.take_trace_events();
        let stats = out.stats;
        println!("=== {} ===", kind.name());
        println!(
            "commits={} aborts={} rejects={} wakeups={} cycles={}",
            stats.commits,
            stats.total_aborts(),
            stats.rejects,
            stats.wakeups,
            stats.cycles
        );
        print!("{}", render_timeline(&trace, threads, 100));
        println!();
    }
    println!(
        "Read the lanes: Baseline shows abort storms (x) from friendly fire;\n\
         RWI turns them into rejects (r) + wake-ups (w); the full system adds\n\
         lock-transaction brackets [ ] and proactive switches S when caches\n\
         overflow."
    );
}
