//! Thread-scaling sweep of one STAMP workload across the Table-II
//! systems — a miniature Fig. 7 row you can read in a terminal.
//!
//! ```text
//! cargo run --release --example stamp_sweep [workload]
//! ```
//! where `workload` is one of: genome intruder kmeans+ kmeans labyrinth
//! ssca2 vacation+ vacation yada (default: intruder).

use lockillertm::lockiller::{Runner, SystemKind};
use lockillertm::stamp::{Scale, Workload, WorkloadKind};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "intruder".into());
    let Some(kind) = WorkloadKind::from_name(&arg) else {
        eprintln!("unknown workload {arg}; options:");
        for w in WorkloadKind::ALL {
            eprintln!("  {}", w.name());
        }
        std::process::exit(2);
    };

    let systems = [
        SystemKind::Cgl,
        SystemKind::Baseline,
        SystemKind::LosaTmSafu,
        SystemKind::LockillerRwi,
        SystemKind::LockillerTm,
    ];
    println!(
        "workload: {} — speedup vs CGL (higher is better)\n",
        kind.name()
    );
    print!("{:<8}", "threads");
    for s in systems.iter().skip(1) {
        print!(" {:>16}", s.name());
    }
    println!();

    for threads in [2usize, 4, 8] {
        let mut cgl = 0u64;
        print!("{threads:<8}");
        for &sys in &systems {
            let mut prog = Workload::with_scale(kind, threads, Scale::Small);
            let stats = Runner::new(sys).threads(threads).run(&mut prog).stats;
            if sys == SystemKind::Cgl {
                cgl = stats.cycles;
            } else {
                print!(" {:>15.2}x", cgl as f64 / stats.cycles as f64);
            }
        }
        println!();
    }
}
