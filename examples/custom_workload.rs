//! Writing your own guest program against the public API: a concurrent
//! bank with transactional transfers, demonstrating the `Program` trait,
//! the transactional closure style, and the post-run validation oracle.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use lockillertm::lockiller::flatmem::{FlatMem, SetupCtx};
use lockillertm::lockiller::guest::GuestCtx;
use lockillertm::lockiller::{Program, Runner, SystemKind};
use lockillertm::sim_core::config::SystemConfig;
use lockillertm::sim_core::types::Addr;

/// N accounts; each thread performs random transfers between accounts.
/// Total balance is invariant — the serializability oracle.
struct Bank {
    accounts: u64,
    transfers_per_thread: u64,
    initial_balance: u64,
    base: Addr,
    threads: u64,
}

impl Program for Bank {
    fn name(&self) -> &str {
        "bank"
    }

    fn setup(&mut self, s: &mut SetupCtx, threads: usize) {
        self.threads = threads as u64;
        self.base = s.alloc(self.accounts * 8); // one line per account
        for a in 0..self.accounts {
            s.write(self.base.add(a * 8), self.initial_balance);
        }
    }

    fn run(&self, ctx: &mut GuestCtx) {
        for _ in 0..self.transfers_per_thread {
            let from = ctx.rng.below(self.accounts);
            let mut to = ctx.rng.below(self.accounts);
            if to == from {
                to = (to + 1) % self.accounts;
            }
            let amount = 1 + ctx.rng.below(10);
            let (fa, ta) = (self.base.add(from * 8), self.base.add(to * 8));
            ctx.critical(|tx| {
                let f = tx.load(fa)?;
                if f >= amount {
                    tx.store(fa, f - amount)?;
                    let t = tx.load(ta)?;
                    tx.store(ta, t + amount)?;
                }
                tx.compute(15)?; // fee computation, logging, ...
                Ok(())
            });
            ctx.compute(25);
        }
    }

    fn validate(&self, mem: &FlatMem) -> Result<(), String> {
        let total: u64 = (0..self.accounts)
            .map(|a| mem.read(self.base.add(a * 8)))
            .sum();
        let want = self.accounts * self.initial_balance;
        if total == want {
            Ok(())
        } else {
            Err(format!("money {total} != {want} — a transfer tore"))
        }
    }
}

fn main() {
    println!("concurrent bank: 8 accounts, 4 threads, random transfers\n");
    for kind in SystemKind::ALL {
        let mut bank = Bank {
            accounts: 8,
            transfers_per_thread: 50,
            initial_balance: 1000,
            base: Addr::NULL,
            threads: 0,
        };
        let stats = Runner::new(kind)
            .threads(4)
            .config(SystemConfig::table1())
            .run(&mut bank)
            .stats; // panics if validation fails
        println!(
            "{:<18} cycles={:>8}  commits={:>4}  aborts={:>4}  balance conserved ✓",
            kind.name(),
            stats.cycles,
            stats.commits + stats.lock_commits,
            stats.total_aborts()
        );
    }
}
