//! Quickstart: run one STAMP workload on the full LockillerTM system and
//! on coarse-grained locking, and compare simulated execution time.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lockillertm::lockiller::{Runner, SystemKind};
use lockillertm::stamp::{Scale, Workload, WorkloadKind};

fn main() {
    let workload = WorkloadKind::VacationHigh;
    let threads = 4;

    println!(
        "workload: {} / {threads} threads / Table-I hardware\n",
        workload.name()
    );
    println!(
        "{:<18} {:>12} {:>9} {:>8} {:>8} {:>12}",
        "system", "cycles", "commits", "aborts", "rejects", "commit rate"
    );
    let mut cgl_cycles = 0u64;
    for kind in [
        SystemKind::Cgl,
        SystemKind::Baseline,
        SystemKind::LockillerRwi,
        SystemKind::LockillerTm,
    ] {
        let mut prog = Workload::with_scale(workload, threads, Scale::Small);
        let stats = Runner::new(kind).threads(threads).run(&mut prog).stats;
        if kind == SystemKind::Cgl {
            cgl_cycles = stats.cycles;
        }
        println!(
            "{:<18} {:>12} {:>9} {:>8} {:>8} {:>11.1}%  ({:.2}x vs CGL)",
            kind.name(),
            stats.cycles,
            stats.commits + stats.lock_commits,
            stats.total_aborts(),
            stats.rejects,
            stats.commit_rate() * 100.0,
            cgl_cycles as f64 / stats.cycles as f64,
        );
    }
}
