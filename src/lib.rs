//! # LockillerTM
//!
//! A full reproduction of *"LockillerTM: Enhancing Performance Lower Bounds
//! in Best-Effort Hardware Transactional Memory"* (Wan, Chao, Li, Han —
//! IPPS 2024) as a Rust library, including the deterministic CMP simulator
//! the mechanisms are evaluated on and the STAMP workload ports the paper
//! measures.
//!
//! This facade crate re-exports the workspace members:
//!
//! - [`sim_core`] — discrete-event substrate, Table-I configuration, stats
//! - [`noc`] — 4x8 mesh network-on-chip timing model
//! - [`coherence`] — MESI directory protocol with HTM extensions
//!   (recovery/NACK, overflow signatures, HLA arbitration)
//! - [`lockiller`] — the paper's contribution: transaction runtime, the
//!   Table-II systems, and the guest-program harness
//! - [`tmlib`] — transactional data structures on simulated memory
//! - [`stamp`] — STAMP benchmark ports
//!
//! ## Quickstart
//!
//! ```
//! use lockillertm::lockiller::{Runner, SystemKind};
//! use lockillertm::sim_core::config::SystemConfig;
//! use lockillertm::stamp::{Scale, Workload, WorkloadKind};
//!
//! let mut workload = Workload::with_scale(WorkloadKind::KmeansHigh, 2, Scale::Tiny);
//! let stats = Runner::new(SystemKind::LockillerTm)
//!     .threads(2)
//!     .config(SystemConfig::testing(2))
//!     .run(&mut workload)
//!     .into_stats();
//! println!("simulated cycles: {}", stats.cycles);
//! assert!(stats.commits > 0);
//! ```

pub use coherence;
pub use lockiller;
pub use noc;
pub use sim_core;
pub use stamp;
pub use tmlib;
